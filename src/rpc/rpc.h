// Minimal Sun-RPC-style call/reply layer over simulated links.
//
// Mirrors the paper's implementation structure (§3.2): programs
// communicate via RPC with XDR-described messages, and the library can
// pretty-print traffic for debugging.  A Dispatcher is the server side of
// one connection; a Client issues synchronous calls over a sim::Link.
//
// Wire format (XDR):
//   call:  uint32 xid, uint32 seqno, uint32 prog, uint32 proc, opaque args
//   reply: uint32 xid, uint32 status (0 = accepted), on error: uint32
//          code + string message, else opaque results
//
// At-most-once semantics: the link retransmits lost messages, so the
// Dispatcher keeps a duplicate-request cache (DRC) keyed by the call's
// wire sequence number — a redelivered request replays the cached reply
// instead of re-executing a possibly non-idempotent handler.  The Client
// discards replies whose xid does not match the outstanding call (stale
// messages from network reordering) and retransmits until the matching
// reply arrives or the retry budget runs out.
#ifndef SFS_SRC_RPC_RPC_H_
#define SFS_SRC_RPC_RPC_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "src/obs/metrics.h"
#include "src/sim/network.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace rpc {

// How many recent replies a duplicate-request cache retains.  A
// retransmitted request older than this gets an error instead of a
// replay (with a synchronous client it would have to be ancient).
inline constexpr uint32_t kDrcWindow = 64;

// Server-side handler for one RPC program.
using ProgramHandler =
    std::function<util::Result<util::Bytes>(uint32_t proc, const util::Bytes& args)>;

// Optional proc-name resolver, used by the traffic pretty-printer.
using ProcNamer = std::function<std::string(uint32_t proc)>;

class Dispatcher : public sim::Service {
 public:
  // `registry` receives the server.* counters, per-procedure ops metrics
  // and trace events; nullptr selects obs::Registry::Default().  `clock`
  // (optional) timestamps trace events and feeds per-procedure handler
  // latency histograms.
  explicit Dispatcher(obs::Registry* registry = nullptr,
                      const sim::Clock* clock = nullptr);

  // `name` labels this program's server-side metrics
  // ("server.<name>.<PROC>.*"); empty derives "PROG<prog>".
  void RegisterProgram(uint32_t prog, ProgramHandler handler, ProcNamer namer = nullptr,
                       std::string name = "");

  // sim::Service: decode the call header, dispatch, encode the reply.
  util::Result<util::Bytes> Handle(const util::Bytes& request) override;

  // Requests answered from the duplicate-request cache (no re-execution).
  // Per-instance shim; the registry's server.drc_hits counter aggregates
  // the same events across dispatchers.
  uint64_t drc_hits() const { return drc_hits_; }

 private:
  struct Program {
    ProgramHandler handler;
    ProcNamer namer;
    std::string name;
    obs::ProcMetricsTable metrics;
  };

  std::string ProcNameFor(const Program* program, uint32_t proc) const;

  std::map<uint32_t, Program> programs_;

  // Duplicate-request cache: wire seqno -> complete reply message.
  std::map<uint32_t, util::Bytes> drc_;
  uint32_t drc_max_seqno_ = 0;
  uint64_t drc_hits_ = 0;

  obs::Registry* registry_;
  const sim::Clock* clock_;
  obs::Tracer* tracer_;
  obs::Counter* m_drc_hits_;
};

// Transport abstraction for the client: anything that can do a
// request/response roundtrip (a raw sim::Link, or an encrypted channel).
class Transport {
 public:
  virtual ~Transport() = default;
  virtual util::Result<util::Bytes> Roundtrip(const util::Bytes& request) = 0;
  // The clock and retry policy governing this transport, when it has one;
  // lets the client charge virtual time while waiting out stale replies.
  virtual sim::Clock* clock() { return nullptr; }
  virtual const sim::RetryPolicy* retry_policy() const { return nullptr; }
};

// Adapts sim::Link to Transport.
class LinkTransport : public Transport {
 public:
  explicit LinkTransport(sim::Link* link) : link_(link) {}
  util::Result<util::Bytes> Roundtrip(const util::Bytes& request) override {
    return link_->Roundtrip(request);
  }
  sim::Clock* clock() override { return link_->clock(); }
  const sim::RetryPolicy* retry_policy() const override { return &link_->retry_policy(); }

 private:
  sim::Link* link_;
};

class Client {
 public:
  // `registry` receives the rpc.client.* counters, the per-procedure
  // metric family ("rpc.client.<prog_name>.<PROC>.*") and trace events;
  // nullptr selects obs::Registry::Default().  `prog_name` labels the
  // metric names (empty derives "PROG<prog>"); `namer` resolves
  // procedure numbers for metric names and trace events.
  Client(Transport* transport, uint32_t prog, obs::Registry* registry = nullptr,
         std::string prog_name = "", ProcNamer namer = nullptr);

  // Synchronous call.  Errors from the transport (kUnavailable,
  // kSecurityError) and from the remote handler both surface as Status.
  util::Result<util::Bytes> Call(uint32_t proc, const util::Bytes& args);

  uint64_t calls_made() const { return calls_made_; }
  // Calls resent because the reply in hand was stale (wrong xid).
  // Per-instance shim; the registry's rpc.client.stale_retries counter
  // aggregates the same events across clients.
  uint64_t retransmissions() const { return retransmissions_; }

 private:
  Transport* transport_;
  uint32_t prog_;
  std::string prog_name_;
  ProcNamer namer_;
  uint32_t next_xid_ = 1;
  uint32_t next_seqno_ = 1;
  uint64_t calls_made_ = 0;
  uint64_t retransmissions_ = 0;

  obs::Registry* registry_;
  obs::Tracer* tracer_;
  obs::Counter* m_stale_retries_;
  obs::ProcMetricsTable metrics_;
};

}  // namespace rpc

#endif  // SFS_SRC_RPC_RPC_H_
