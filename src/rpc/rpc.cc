#include "src/rpc/rpc.h"

#include "src/util/log.h"
#include "src/xdr/xdr.h"

namespace rpc {
namespace {

constexpr uint32_t kReplyAccepted = 0;
constexpr uint32_t kReplyError = 1;

}  // namespace

void Dispatcher::RegisterProgram(uint32_t prog, ProgramHandler handler, ProcNamer namer) {
  programs_[prog] = Program{std::move(handler), std::move(namer)};
}

util::Result<util::Bytes> Dispatcher::Handle(const util::Bytes& request) {
  xdr::Decoder dec(request);
  auto xid = dec.GetUint32();
  auto seqno = dec.GetUint32();
  auto prog = dec.GetUint32();
  auto proc = dec.GetUint32();
  auto args = dec.GetOpaque();
  if (!xid.ok() || !seqno.ok() || !prog.ok() || !proc.ok() || !args.ok() || !dec.AtEnd()) {
    return util::InvalidArgument("RPC: malformed call message");
  }

  // Duplicate-request cache: a retransmitted call must not re-execute a
  // non-idempotent handler.  Replay the reply recorded the first time.
  if (auto cached = drc_.find(seqno.value()); cached != drc_.end()) {
    ++drc_hits_;
    return cached->second;
  }
  if (seqno.value() + kDrcWindow <= drc_max_seqno_ && drc_max_seqno_ != 0) {
    // Older than anything the cache retains; the reply is long gone and
    // re-executing would break at-most-once.
    return util::InvalidArgument("RPC: request seqno below duplicate-cache window");
  }

  xdr::Encoder reply;
  reply.PutUint32(xid.value());

  util::Bytes reply_bytes;
  auto it = programs_.find(prog.value());
  if (it == programs_.end()) {
    reply.PutUint32(kReplyError);
    reply.PutUint32(static_cast<uint32_t>(util::ErrorCode::kNotFound));
    reply.PutString("no such program");
    reply_bytes = reply.Take();
  } else {
    if (util::GetLogLevel() <= util::LogLevel::kDebug) {
      std::string proc_name =
          it->second.namer ? it->second.namer(proc.value()) : std::to_string(proc.value());
      SFS_LOG(kDebug) << "rpc call prog=" << prog.value() << " proc=" << proc_name
                      << " args=" << args.value().size() << "B";
    }

    auto result = it->second.handler(proc.value(), args.value());
    if (!result.ok()) {
      reply.PutUint32(kReplyError);
      reply.PutUint32(static_cast<uint32_t>(result.status().code()));
      reply.PutString(result.status().message());
    } else {
      reply.PutUint32(kReplyAccepted);
      reply.PutOpaque(result.value());
    }
    reply_bytes = reply.Take();
  }

  // Cache every reply — including handler errors, which a duplicate must
  // see verbatim rather than triggering a second execution attempt.
  drc_[seqno.value()] = reply_bytes;
  if (seqno.value() > drc_max_seqno_) {
    drc_max_seqno_ = seqno.value();
  }
  while (!drc_.empty() && drc_.begin()->first + kDrcWindow <= drc_max_seqno_) {
    drc_.erase(drc_.begin());
  }
  return reply_bytes;
}

util::Result<util::Bytes> Client::Call(uint32_t proc, const util::Bytes& args) {
  uint32_t xid = next_xid_++;
  uint32_t seqno = next_seqno_++;
  ++calls_made_;
  xdr::Encoder call;
  call.PutUint32(xid);
  call.PutUint32(seqno);
  call.PutUint32(prog_);
  call.PutUint32(proc);
  call.PutOpaque(args);
  const util::Bytes wire = call.Take();

  // Network reordering can hand us a stale reply (some earlier call's
  // xid).  That is loss, not an attack: discard it, wait out a timeout,
  // and retransmit the same wire bytes — the server's DRC guarantees the
  // handler does not run twice.
  const sim::RetryPolicy* policy = transport_->retry_policy();
  sim::RetryPolicy default_policy;
  if (policy == nullptr) {
    policy = &default_policy;
  }
  uint32_t attempts = policy->max_transmissions == 0 ? 1 : policy->max_transmissions;
  util::Status last_error = util::Unavailable("RPC: no matching reply");
  for (uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      if (sim::Clock* clock = transport_->clock(); clock != nullptr) {
        clock->Advance(policy->initial_rto_ns);
      }
      ++retransmissions_;
    }

    auto roundtrip = transport_->Roundtrip(wire);
    if (!roundtrip.ok()) {
      // The transport already retried transit loss; its verdict is final.
      return roundtrip.status();
    }

    xdr::Decoder dec(std::move(roundtrip).value());
    auto reply_xid = dec.GetUint32();
    if (!reply_xid.ok()) {
      last_error = util::InvalidArgument("RPC: truncated reply");
      continue;
    }
    if (reply_xid.value() != xid) {
      last_error = util::Unavailable("RPC: stale reply xid, retransmitting");
      continue;
    }
    ASSIGN_OR_RETURN(uint32_t status, dec.GetUint32());
    if (status == kReplyAccepted) {
      ASSIGN_OR_RETURN(util::Bytes results, dec.GetOpaque());
      if (!dec.AtEnd()) {
        return util::InvalidArgument("RPC: trailing bytes in reply");
      }
      return results;
    }
    ASSIGN_OR_RETURN(uint32_t code, dec.GetUint32());
    ASSIGN_OR_RETURN(std::string message, dec.GetString());
    if (code == 0 || code > static_cast<uint32_t>(util::ErrorCode::kInternal)) {
      code = static_cast<uint32_t>(util::ErrorCode::kInternal);
    }
    return util::Status(static_cast<util::ErrorCode>(code), message);
  }
  return util::Unavailable("RPC: gave up waiting for a fresh reply: " + last_error.message());
}

}  // namespace rpc
