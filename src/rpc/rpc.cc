#include "src/rpc/rpc.h"

#include <algorithm>
#include <vector>

#include "src/obs/span.h"
#include "src/sim/event.h"
#include "src/util/log.h"
#include "src/xdr/xdr.h"

namespace rpc {
namespace {

constexpr uint32_t kReplyAccepted = 0;
constexpr uint32_t kReplyError = 1;

}  // namespace

Dispatcher::Dispatcher(obs::Registry* registry, const sim::Clock* clock)
    : registry_(registry != nullptr ? registry : obs::Registry::Default()),
      clock_(clock),
      tracer_(&registry_->tracer()),
      spans_(&registry_->spans()),
      m_drc_hits_(registry_->GetCounter("server.drc_hits")) {}

void Dispatcher::RegisterProgram(uint32_t prog, ProgramHandler handler, ProcNamer namer,
                                 std::string name) {
  if (name.empty()) {
    name = "PROG" + std::to_string(prog);
  }
  Program& program = programs_[prog];
  program.handler = std::move(handler);
  program.namer = std::move(namer);
  program.name = std::move(name);
  program.metrics.Init(registry_, "server." + program.name);
}

std::string Dispatcher::ProcNameFor(const Program* program, uint32_t proc) const {
  if (program != nullptr && program->namer) {
    return program->namer(proc);
  }
  return std::to_string(proc);
}

util::Result<util::Bytes> Dispatcher::Handle(const util::Bytes& request) {
  xdr::Decoder dec(request);
  auto xid = dec.GetUint32();
  auto seqno = dec.GetUint32();
  auto prog = dec.GetUint32();
  auto proc = dec.GetUint32();
  auto args = dec.GetOpaque();
  if (!xid.ok() || !seqno.ok() || !prog.ok() || !proc.ok() || !args.ok()) {
    return util::InvalidArgument("RPC: malformed call message");
  }
  // Optional trailing trace context, present only while the caller's span
  // collector is enabled (docs/OBSERVABILITY.md §"Spans").  Retransmits
  // resend identical bytes, so a duplicate carries its original context.
  obs::SpanContext wire_ctx;
  if (!dec.AtEnd()) {
    auto trace_id = dec.GetUint64();
    auto parent_span = dec.GetUint64();
    if (!trace_id.ok() || !parent_span.ok()) {
      return util::InvalidArgument("RPC: malformed call message");
    }
    wire_ctx = obs::SpanContext{trace_id.value(), parent_span.value()};
  }
  if (!dec.AtEnd()) {
    return util::InvalidArgument("RPC: malformed call message");
  }

  auto it = programs_.find(prog.value());
  Program* program = it == programs_.end() ? nullptr : &it->second;
  const uint64_t now_ns = clock_ != nullptr ? clock_->now_ns() : 0;

  // Duplicate-request cache: a retransmitted call must not re-execute a
  // non-idempotent handler.  Replay the reply recorded the first time.
  if (auto cached = drc_.find(seqno.value()); cached != drc_.end()) {
    ++drc_hits_;
    m_drc_hits_->Increment();
    if (tracer_->active()) {
      obs::TraceEvent event;
      event.kind = obs::TraceEvent::Kind::kServerDrcHit;
      event.layer = "rpc";
      event.prog = prog.value();
      event.proc = proc.value();
      event.proc_name = ProcNameFor(program, proc.value());
      event.xid = xid.value();
      event.seqno = seqno.value();
      event.wire_bytes = cached->second.size();
      event.t_send_ns = now_ns;
      event.t_recv_ns = now_ns;
      event.drc_hit = true;
      event.note = "replayed cached reply";
      tracer_->Emit(event);
    }
    if (spans_->enabled()) {
      // Zero-duration marker: the retransmitted copy was answered from
      // the cache, parented into the original call's trace by the wire
      // context the duplicate still carries.
      obs::Span span;
      span.name = "rpc.drc_hit";
      span.layer = "server";
      span.start_ns = now_ns;
      span.end_ns = now_ns;
      span.xid = xid.value();
      span.seqno = seqno.value();
      span.wire_bytes = cached->second.size();
      span.drc_hit = true;
      spans_->RecordClosed(std::move(span),
                           wire_ctx.valid() ? wire_ctx : spans_->current());
    }
    return cached->second;
  }
  if (seqno.value() + kDrcWindow <= drc_max_seqno_ && drc_max_seqno_ != 0) {
    // Older than anything the cache retains; the reply is long gone and
    // re-executing would break at-most-once.
    return util::InvalidArgument("RPC: request seqno below duplicate-cache window");
  }

  xdr::Encoder reply;
  reply.PutUint32(xid.value());

  util::Bytes reply_bytes;
  if (program == nullptr) {
    reply.PutUint32(kReplyError);
    reply.PutUint32(static_cast<uint32_t>(util::ErrorCode::kNotFound));
    reply.PutString("no such program");
    reply_bytes = reply.Take();
  } else {
    std::string proc_name = ProcNameFor(program, proc.value());
    if (util::GetLogLevel() <= util::LogLevel::kDebug) {
      SFS_LOG(kDebug) << "rpc call prog=" << prog.value() << " proc=" << proc_name
                      << " args=" << args.value().size() << "B";
    }
    if (tracer_->active()) {
      obs::TraceEvent event;
      event.kind = obs::TraceEvent::Kind::kServerDispatch;
      event.layer = "rpc";
      event.prog = prog.value();
      event.proc = proc.value();
      event.proc_name = proc_name;
      event.xid = xid.value();
      event.seqno = seqno.value();
      event.wire_bytes = request.size();
      event.t_send_ns = now_ns;
      tracer_->Emit(event);
    }

    obs::ProcMetrics* pm = program->metrics.Get(proc.value(), proc_name);
    pm->calls->Increment();
    pm->bytes_received->Increment(request.size());

    // Dispatch span: explicit wire-context parent when the caller sent
    // one (correct even for a retransmitted copy raced by the original),
    // ambient otherwise.  Pushed so handler-side spans (disk charges)
    // nest under it.
    uint64_t dispatch_span = 0;
    if (spans_->enabled()) {
      dispatch_span = spans_->Begin("rpc.dispatch." + proc_name, "server", wire_ctx);
      if (obs::Span* s = spans_->Find(dispatch_span)) {
        s->xid = xid.value();
        s->seqno = seqno.value();
        s->wire_bytes = request.size();
      }
      spans_->Push(dispatch_span);
    }
    auto result = program->handler(proc.value(), args.value());
    if (dispatch_span != 0) {
      if (obs::Span* s = spans_->Find(dispatch_span)) {
        s->error = !result.ok();
      }
      spans_->Pop(dispatch_span);
      spans_->End(dispatch_span);
    }
    if (clock_ != nullptr) {
      // Handler execution time (server CPU + disk, by the cost model).
      pm->latency->Record(clock_->now_ns() - now_ns);
    }
    if (!result.ok()) {
      pm->errors->Increment();
      reply.PutUint32(kReplyError);
      reply.PutUint32(static_cast<uint32_t>(result.status().code()));
      reply.PutString(result.status().message());
    } else {
      reply.PutUint32(kReplyAccepted);
      reply.PutOpaque(result.value());
    }
    reply_bytes = reply.Take();
    pm->bytes_sent->Increment(reply_bytes.size());

    if (tracer_->active()) {
      obs::TraceEvent event;
      event.kind = obs::TraceEvent::Kind::kServerReply;
      event.layer = "rpc";
      event.prog = prog.value();
      event.proc = proc.value();
      event.proc_name = proc_name;
      event.xid = xid.value();
      event.seqno = seqno.value();
      event.wire_bytes = reply_bytes.size();
      event.t_send_ns = now_ns;
      event.t_recv_ns = clock_ != nullptr ? clock_->now_ns() : 0;
      if (!result.ok()) {
        event.note = result.status().message();
      }
      tracer_->Emit(event);
    }
  }

  // Cache every reply — including handler errors, which a duplicate must
  // see verbatim rather than triggering a second execution attempt.
  drc_[seqno.value()] = reply_bytes;
  if (seqno.value() > drc_max_seqno_) {
    drc_max_seqno_ = seqno.value();
  }
  while (!drc_.empty() && drc_.begin()->first + kDrcWindow <= drc_max_seqno_) {
    drc_.erase(drc_.begin());
  }
  return reply_bytes;
}

Client::Client(Transport* transport, uint32_t prog, obs::Registry* registry,
               std::string prog_name, ProcNamer namer)
    : transport_(transport),
      prog_(prog),
      prog_name_(prog_name.empty() ? "PROG" + std::to_string(prog) : std::move(prog_name)),
      namer_(std::move(namer)),
      registry_(registry != nullptr ? registry : obs::Registry::Default()),
      tracer_(&registry_->tracer()),
      spans_(&registry_->spans()),
      m_stale_retries_(registry_->GetCounter("rpc.client.stale_retries")),
      m_unmatched_replies_(registry_->GetCounter("rpc.client.unmatched_replies")),
      m_window_occupancy_sum_(registry_->GetCounter("rpc.client.window_occupancy_sum")),
      m_window_samples_(registry_->GetCounter("rpc.client.window_samples")),
      g_in_flight_(registry_->GetGauge("rpc.client.in_flight")),
      m_queue_wait_(registry_->GetHistogram("rpc.client.queue_wait_ns")) {
  metrics_.Init(registry_, "rpc.client." + prog_name_);
}

Client::~Client() {
  // Disarm event-driven retransmission timers: the clock (and its event
  // queue) outlives the client, and a fired timer would touch freed
  // state.
  if (event_driven_) {
    if (sim::Clock* clock = transport_->clock()) {
      for (auto& [xid, call] : pending_) {
        if (call.timer_id != 0) {
          clock->events()->Cancel(call.timer_id);
        }
      }
    }
  }
  // Calls abandoned in-flight are no longer occupying the window.
  g_in_flight_->Add(-static_cast<int64_t>(pending_.size()));
}

void Client::set_window(uint32_t window) {
  window_ = std::clamp<uint32_t>(window, 1, kMaxSendWindow);
}

void Client::EnableEventDriven() {
  if (event_driven_ || !transport_->SupportsEventDriven() ||
      !transport_->SupportsPipelining() || transport_->clock() == nullptr) {
    return;
  }
  event_driven_ = true;
  transport_->SetDeliverySink(
      [this](sim::Delivery delivery) { OnDelivery(std::move(delivery)); });
}

bool Client::UsePipelining() const {
  return window_ > 1 && transport_->SupportsPipelining();
}

util::Result<util::Bytes> Client::Call(uint32_t proc, const util::Bytes& args) {
  if (!UsePipelining()) {
    return LegacyCall(proc, args);
  }
  // Submit through the window and pump until this call's reply lands;
  // earlier async calls complete (and run their callbacks) on the way.
  std::optional<util::Result<util::Bytes>> out;
  CallAsync(proc, args,
            [&out](util::Result<util::Bytes> result) { out = std::move(result); });
  while (!out.has_value()) {
    PumpOnce();
  }
  return std::move(*out);
}

util::Result<util::Bytes> Client::LegacyCall(uint32_t proc, const util::Bytes& args) {
  uint32_t xid = next_xid_++;
  uint32_t seqno = next_seqno_++;
  ++calls_made_;
  const std::string proc_name = namer_ ? namer_(proc) : std::to_string(proc);

  // The call span covers the whole stop-and-wait exchange, retransmits
  // included; pushed so link/server child spans nest under it.
  obs::ScopedSpan call_span(spans_, "rpc.call." + proc_name, "rpc");

  xdr::Encoder call;
  call.PutUint32(xid);
  call.PutUint32(seqno);
  call.PutUint32(prog_);
  call.PutUint32(proc);
  call.PutOpaque(args);
  if (obs::Span* s = call_span.span()) {
    // Trace context rides after the args; sealed/retransmitted copies
    // carry it verbatim, so the server always sees the original parent.
    call.PutUint64(s->trace_id);
    call.PutUint64(s->id);
  }
  const util::Bytes wire = call.Take();
  if (obs::Span* s = call_span.span()) {
    s->xid = xid;
    s->seqno = seqno;
    s->wire_bytes = wire.size();
  }

  obs::ProcMetrics* pm = metrics_.Get(proc, proc_name);
  pm->calls->Increment();

  sim::Clock* clock = transport_->clock();
  const uint64_t t_call_ns = clock != nullptr ? clock->now_ns() : 0;
  sim::Clock::CategorySnapshot before;
  if (clock != nullptr) {
    before = clock->categories();
  }

  auto emit = [&](obs::TraceEvent::Kind kind, uint32_t attempt, uint64_t wire_bytes,
                  const std::string& note) {
    if (!tracer_->active()) {
      return;
    }
    obs::TraceEvent event;
    event.kind = kind;
    event.layer = "rpc";
    event.prog = prog_;
    event.proc = proc;
    event.proc_name = proc_name;
    event.xid = xid;
    event.seqno = seqno;
    event.wire_bytes = wire_bytes;
    event.t_send_ns = t_call_ns;
    event.t_recv_ns = clock != nullptr ? clock->now_ns() : 0;
    event.attempt = attempt;
    event.note = note;
    tracer_->Emit(event);
  };

  // On every exit path, attribute the call's elapsed virtual time to the
  // per-procedure latency histogram and slice it by charge category.
  auto finish = [&](bool ok, uint64_t reply_bytes) {
    if (!ok) {
      pm->errors->Increment();
      if (obs::Span* s = call_span.span()) {
        s->error = true;
      }
    }
    pm->bytes_received->Increment(reply_bytes);
    if (clock != nullptr) {
      pm->latency->Record(clock->now_ns() - t_call_ns);
      const sim::Clock::CategorySnapshot& after = clock->categories();
      for (size_t i = 0; i < obs::kTimeCategoryCount; ++i) {
        pm->time[i]->Increment(after.ns[i] - before.ns[i]);
      }
    }
  };

  emit(obs::TraceEvent::Kind::kClientCall, 0, wire.size(), "");

  // Network reordering can hand us a stale reply (some earlier call's
  // xid).  That is loss, not an attack: discard it, wait out a timeout,
  // and retransmit the same wire bytes — the server's DRC guarantees the
  // handler does not run twice.
  const sim::RetryPolicy* policy = transport_->retry_policy();
  sim::RetryPolicy default_policy;
  if (policy == nullptr) {
    policy = &default_policy;
  }
  uint32_t attempts = policy->max_transmissions == 0 ? 1 : policy->max_transmissions;
  util::Status last_error = util::Unavailable("RPC: no matching reply");
  for (uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      if (clock != nullptr) {
        clock->Advance(policy->initial_rto_ns, obs::TimeCategory::kWait);
      }
      ++retransmissions_;
      m_stale_retries_->Increment();
      pm->retransmits->Increment();
      if (obs::Span* s = call_span.span()) {
        ++s->retransmits;
      }
      emit(obs::TraceEvent::Kind::kClientRetransmit, attempt, wire.size(),
           last_error.message());
    }
    pm->bytes_sent->Increment(wire.size());

    auto roundtrip = transport_->Roundtrip(wire);
    if (!roundtrip.ok()) {
      // The transport already retried transit loss; its verdict is final.
      finish(false, 0);
      return roundtrip.status();
    }

    xdr::Decoder dec(std::move(roundtrip).value());
    auto reply_xid = dec.GetUint32();
    if (!reply_xid.ok()) {
      last_error = util::InvalidArgument("RPC: truncated reply");
      continue;
    }
    if (reply_xid.value() != xid) {
      // Lookup-or-count: with a single outstanding call the lookup is
      // just an equality check, but the discard is never silent — the
      // unmatched-replies counter records every one.
      ++unmatched_replies_;
      m_unmatched_replies_->Increment();
      last_error = util::Unavailable("RPC: stale reply xid, retransmitting");
      emit(obs::TraceEvent::Kind::kClientStaleReply, attempt, 0,
           "reply xid " + std::to_string(reply_xid.value()));
      continue;
    }
    ASSIGN_OR_RETURN(uint32_t status, dec.GetUint32());
    if (status == kReplyAccepted) {
      ASSIGN_OR_RETURN(util::Bytes results, dec.GetOpaque());
      if (!dec.AtEnd()) {
        finish(false, 0);
        return util::InvalidArgument("RPC: trailing bytes in reply");
      }
      finish(true, results.size());
      emit(obs::TraceEvent::Kind::kClientReply, attempt, results.size(), "");
      return results;
    }
    ASSIGN_OR_RETURN(uint32_t code, dec.GetUint32());
    ASSIGN_OR_RETURN(std::string message, dec.GetString());
    if (code == 0 || code > static_cast<uint32_t>(util::ErrorCode::kInternal)) {
      code = static_cast<uint32_t>(util::ErrorCode::kInternal);
    }
    finish(false, 0);
    return util::Status(static_cast<util::ErrorCode>(code), message);
  }
  finish(false, 0);
  return util::Unavailable("RPC: gave up waiting for a fresh reply: " + last_error.message());
}

// --- Pipelined path ---------------------------------------------------------

void Client::EmitEvent(obs::TraceEvent::Kind kind, const PendingCall& call,
                       uint64_t wire_bytes, const std::string& note) {
  if (!tracer_->active()) {
    return;
  }
  sim::Clock* clock = transport_->clock();
  obs::TraceEvent event;
  event.kind = kind;
  event.layer = "rpc";
  event.prog = prog_;
  event.proc = call.proc;
  event.proc_name = call.proc_name;
  event.xid = call.xid;
  event.seqno = call.seqno;
  event.wire_bytes = wire_bytes;
  event.t_send_ns = call.t_call_ns;
  event.t_recv_ns = clock != nullptr ? clock->now_ns() : 0;
  event.attempt = call.attempt;
  event.note = note;
  tracer_->Emit(event);
}

void Client::Transmit(PendingCall* call) {
  call->pm->bytes_sent->Increment(call->wire.size());
  // The call span is ambient across Submit so the link's transit
  // bookkeeping (and the server-side dispatch, which executes under the
  // submitter's context) parent under it (Push(0) no-ops).
  spans_->Push(call->span_id);
  const uint64_t token = transport_->Submit(call->wire);
  spans_->Pop(call->span_id);
  token_to_xid_[token] = call->xid;
  sim::Clock* clock = transport_->clock();
  call->deadline_ns = (clock != nullptr ? clock->now_ns() : 0) + call->rto_ns;
  if (event_driven_) {
    // Cancellable engine timer instead of the AwaitNext deadline poll.
    // The timer fires only if nothing completed the call first; the gap
    // it bridges (idle waiting out a lost message) is kWait, same as the
    // pull path charges it.
    const uint32_t xid = call->xid;
    call->timer_id = clock->events()->Schedule(
        call->deadline_ns, obs::TimeCategory::kWait,
        [this, xid] { OnRetransmitTimer(xid); });
  }
}

void Client::CallAsync(uint32_t proc, const util::Bytes& args, Callback done) {
  if (!UsePipelining()) {
    // Stop-and-wait fallback: complete synchronously.
    done(LegacyCall(proc, args));
    return;
  }
  sim::Clock* clock = transport_->clock();
  // A new call may enter only when (a) a window slot is free and (b) its
  // seqno would stay within the server's duplicate-request window of the
  // oldest outstanding call.  (b) matters because completions arrive out
  // of order: while the oldest call waits out its retransmission timer,
  // newer calls keep completing and freeing slots, so the send window
  // alone does not bound the seqno spread — without this hold, the DRC
  // can slide past the stuck seqno and reject its retransmission.
  // pending_ is keyed by xid, and xids and seqnos advance together, so
  // the first entry is the oldest seqno.  kDrcWindow/2 leaves the server
  // margin for retransmitted copies and matches kMaxSendWindow, so the
  // hold only ever engages when completions have outrun the oldest call
  // by more than a full window.
  auto may_issue = [this] {
    return pending_.size() < window_ &&
           (pending_.empty() ||
            next_seqno_ - pending_.begin()->second.seqno < kDrcWindow / 2);
  };
  if (!may_issue()) {
    // Pump until the call may enter.  The wait is real queueing delay the
    // caller experiences, so record it.
    const uint64_t wait_start = clock != nullptr ? clock->now_ns() : 0;
    while (!may_issue()) {
      PumpOnce();
    }
    if (clock != nullptr) {
      m_queue_wait_->Record(clock->now_ns() - wait_start);
    }
  } else {
    m_queue_wait_->Record(0);
  }

  const sim::RetryPolicy* policy = transport_->retry_policy();
  sim::RetryPolicy default_policy;
  if (policy == nullptr) {
    policy = &default_policy;
  }

  uint32_t xid = next_xid_++;
  uint32_t seqno = next_seqno_++;
  ++calls_made_;
  const std::string proc_name = namer_ ? namer_(proc) : std::to_string(proc);

  // Async call span: parented to the ambient span at submission (the
  // initiating operation), ended when the reply completes the call.
  // Initiators that must satisfy the nesting invariant drain their async
  // calls before closing their own span.
  uint64_t span_id = 0;
  if (spans_->enabled()) {
    span_id = spans_->Begin("rpc.call." + proc_name, "rpc");
  }

  xdr::Encoder enc;
  enc.PutUint32(xid);
  enc.PutUint32(seqno);
  enc.PutUint32(prog_);
  enc.PutUint32(proc);
  enc.PutOpaque(args);
  if (obs::Span* s = spans_->Find(span_id)) {
    enc.PutUint64(s->trace_id);
    enc.PutUint64(s->id);
    s->xid = xid;
    s->seqno = seqno;
  }

  PendingCall call;
  call.xid = xid;
  call.seqno = seqno;
  call.proc = proc;
  call.proc_name = proc_name;
  call.span_id = span_id;
  call.wire = enc.Take();
  if (obs::Span* s = spans_->Find(span_id)) {
    s->wire_bytes = call.wire.size();
  }
  call.t_call_ns = clock != nullptr ? clock->now_ns() : 0;
  call.rto_ns = policy->initial_rto_ns;
  call.pm = metrics_.Get(proc, call.proc_name);
  call.pm->calls->Increment();
  call.done = std::move(done);

  auto [it, inserted] = pending_.emplace(xid, std::move(call));
  (void)inserted;
  g_in_flight_->Add(1);
  EmitEvent(obs::TraceEvent::Kind::kClientCall, it->second, it->second.wire.size(), "");
  Transmit(&it->second);
  m_window_occupancy_sum_->Increment(pending_.size());
  m_window_samples_->Increment();
}

void Client::Drain() {
  while (!pending_.empty()) {
    PumpOnce();
  }
}

void Client::PumpOnce() {
  if (pending_.empty()) {
    return;
  }
  if (event_driven_) {
    // Deliveries and retransmission timers are all engine events; with a
    // call pending there is always at least one scheduled (its timer),
    // so one dispatch always makes progress.
    transport_->clock()->events()->RunOne();
    return;
  }
  uint64_t deadline = pending_.begin()->second.deadline_ns;
  for (const auto& [xid, call] : pending_) {
    deadline = std::min(deadline, call.deadline_ns);
  }
  auto delivery = transport_->AwaitNext(deadline);
  if (delivery.has_value()) {
    OnDelivery(std::move(*delivery));
    return;
  }

  // The earliest retransmission timer fired with nothing on the wire:
  // resend (or give up on) every expired call.
  const sim::RetryPolicy* policy = transport_->retry_policy();
  sim::RetryPolicy default_policy;
  if (policy == nullptr) {
    policy = &default_policy;
  }
  sim::Clock* clock = transport_->clock();
  const uint64_t now = clock != nullptr ? clock->now_ns() : deadline;
  std::vector<uint32_t> expired;
  for (const auto& [xid, call] : pending_) {
    if (call.deadline_ns <= now) {
      expired.push_back(xid);
    }
  }
  const uint32_t attempts = policy->max_transmissions == 0 ? 1 : policy->max_transmissions;
  for (uint32_t xid : expired) {
    auto it = pending_.find(xid);
    if (it == pending_.end()) {
      continue;
    }
    PendingCall& call = it->second;
    if (call.attempt + 1 >= attempts) {
      Complete(xid, util::Unavailable("RPC: retry budget exhausted waiting for reply"));
      continue;
    }
    ++call.attempt;
    call.rto_ns = std::min(call.rto_ns * policy->backoff_factor, policy->max_rto_ns);
    // Timer resends count as link retransmissions (we cannot tell loss
    // from reordering here), not as stale_retries — Testbed sums the
    // two, so attributing to both would double-count.
    ++retransmissions_;
    transport_->NoteRetransmission();
    call.pm->retransmits->Increment();
    if (obs::Span* s = spans_->Find(call.span_id)) {
      ++s->retransmits;
    }
    EmitEvent(obs::TraceEvent::Kind::kClientRetransmit, call, call.wire.size(),
              "retransmission timer expired");
    Transmit(&call);
  }
}

void Client::OnRetransmitTimer(uint32_t xid) {
  auto it = pending_.find(xid);
  if (it == pending_.end()) {
    return;  // Completed in the same dispatch round; timer raced the cancel.
  }
  PendingCall& call = it->second;
  call.timer_id = 0;  // This timer just fired; Transmit re-arms.
  const sim::RetryPolicy* policy = transport_->retry_policy();
  sim::RetryPolicy default_policy;
  if (policy == nullptr) {
    policy = &default_policy;
  }
  const uint32_t attempts = policy->max_transmissions == 0 ? 1 : policy->max_transmissions;
  if (call.attempt + 1 >= attempts) {
    Complete(xid, util::Unavailable("RPC: retry budget exhausted waiting for reply"));
    return;
  }
  ++call.attempt;
  call.rto_ns = std::min(call.rto_ns * policy->backoff_factor, policy->max_rto_ns);
  ++retransmissions_;
  transport_->NoteRetransmission();
  call.pm->retransmits->Increment();
  if (obs::Span* s = spans_->Find(call.span_id)) {
    ++s->retransmits;
  }
  EmitEvent(obs::TraceEvent::Kind::kClientRetransmit, call, call.wire.size(),
            "retransmission timer expired");
  Transmit(&call);
}

void Client::OnDelivery(sim::Delivery delivery) {
  // Attribute service-level verdicts through the submission token (the
  // response bytes, if any, are not a parseable reply).
  uint32_t token_xid = 0;
  if (auto tok = token_to_xid_.find(delivery.token); tok != token_to_xid_.end()) {
    token_xid = tok->second;
    token_to_xid_.erase(tok);
  }
  if (!delivery.status.ok()) {
    if (pending_.count(token_xid) != 0) {
      Complete(token_xid, delivery.status);
    }
    return;
  }

  auto count_unmatched = [&](uint32_t xid, const std::string& note) {
    ++unmatched_replies_;
    m_unmatched_replies_->Increment();
    if (tracer_->active()) {
      sim::Clock* clock = transport_->clock();
      obs::TraceEvent event;
      event.kind = obs::TraceEvent::Kind::kClientStaleReply;
      event.layer = "rpc";
      event.prog = prog_;
      event.xid = xid;
      event.wire_bytes = delivery.response.size();
      event.t_recv_ns = clock != nullptr ? clock->now_ns() : 0;
      event.note = note;
      tracer_->Emit(event);
    }
  };

  xdr::Decoder dec(std::move(delivery.response));
  auto reply_xid = dec.GetUint32();
  if (!reply_xid.ok()) {
    count_unmatched(0, "truncated reply header");
    return;
  }
  auto it = pending_.find(reply_xid.value());
  if (it == pending_.end()) {
    // No outstanding call wants this xid: a late duplicate of an already
    // completed call (retransmit raced the reply).  Counted, not silent.
    count_unmatched(reply_xid.value(), "no outstanding call for xid");
    return;
  }

  auto status_word = dec.GetUint32();
  if (!status_word.ok()) {
    // Matched but unparseable: discard and let the timer resend; the
    // server DRC replays the intact reply.
    count_unmatched(reply_xid.value(), "truncated reply body");
    return;
  }
  if (status_word.value() == kReplyAccepted) {
    auto results = dec.GetOpaque();
    if (!results.ok() || !dec.AtEnd()) {
      count_unmatched(reply_xid.value(), "malformed accepted reply");
      return;
    }
    Complete(reply_xid.value(), std::move(results).value());
    return;
  }
  auto code = dec.GetUint32();
  auto message = dec.GetString();
  if (!code.ok() || !message.ok()) {
    count_unmatched(reply_xid.value(), "malformed error reply");
    return;
  }
  uint32_t clamped = code.value();
  if (clamped == 0 || clamped > static_cast<uint32_t>(util::ErrorCode::kInternal)) {
    clamped = static_cast<uint32_t>(util::ErrorCode::kInternal);
  }
  Complete(reply_xid.value(),
           util::Status(static_cast<util::ErrorCode>(clamped), message.value()));
}

void Client::Complete(uint32_t xid, util::Result<util::Bytes> result) {
  auto it = pending_.find(xid);
  if (it == pending_.end()) {
    return;
  }
  PendingCall call = std::move(it->second);
  pending_.erase(it);
  g_in_flight_->Add(-1);
  if (call.timer_id != 0) {
    // Event-driven mode: the reply beat the retransmission timer; cancel
    // it so it neither fires nor holds the event queue open.
    transport_->clock()->events()->Cancel(call.timer_id);
  }
  // Retire every submission token still pointing at this call (dropped
  // copies never produced a delivery to clean themselves up).
  for (auto tok = token_to_xid_.begin(); tok != token_to_xid_.end();) {
    tok = tok->second == xid ? token_to_xid_.erase(tok) : std::next(tok);
  }
  sim::Clock* clock = transport_->clock();
  if (result.ok()) {
    call.pm->bytes_received->Increment(result.value().size());
    EmitEvent(obs::TraceEvent::Kind::kClientReply, call, result.value().size(), "");
  } else {
    call.pm->errors->Increment();
  }
  if (clock != nullptr) {
    // Wall-clock latency of the whole call.  Per-category slices are not
    // recorded here: overlapping calls share elapsed time, so a per-call
    // category diff would double-charge (the legacy path keeps them).
    call.pm->latency->Record(clock->now_ns() - call.t_call_ns);
  }
  if (call.span_id != 0) {
    if (obs::Span* s = spans_->Find(call.span_id)) {
      s->error = !result.ok();
    }
    spans_->End(call.span_id);
  }
  if (call.done) {
    call.done(std::move(result));
  }
}

}  // namespace rpc
