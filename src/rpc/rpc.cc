#include "src/rpc/rpc.h"

#include "src/util/log.h"
#include "src/xdr/xdr.h"

namespace rpc {
namespace {

constexpr uint32_t kReplyAccepted = 0;
constexpr uint32_t kReplyError = 1;

}  // namespace

void Dispatcher::RegisterProgram(uint32_t prog, ProgramHandler handler, ProcNamer namer) {
  programs_[prog] = Program{std::move(handler), std::move(namer)};
}

util::Result<util::Bytes> Dispatcher::Handle(const util::Bytes& request) {
  xdr::Decoder dec(request);
  auto xid = dec.GetUint32();
  auto prog = dec.GetUint32();
  auto proc = dec.GetUint32();
  auto args = dec.GetOpaque();
  if (!xid.ok() || !prog.ok() || !proc.ok() || !args.ok() || !dec.AtEnd()) {
    return util::InvalidArgument("RPC: malformed call message");
  }

  xdr::Encoder reply;
  reply.PutUint32(xid.value());

  auto it = programs_.find(prog.value());
  if (it == programs_.end()) {
    reply.PutUint32(kReplyError);
    reply.PutUint32(static_cast<uint32_t>(util::ErrorCode::kNotFound));
    reply.PutString("no such program");
    return reply.Take();
  }

  if (util::GetLogLevel() <= util::LogLevel::kDebug) {
    std::string proc_name =
        it->second.namer ? it->second.namer(proc.value()) : std::to_string(proc.value());
    SFS_LOG(kDebug) << "rpc call prog=" << prog.value() << " proc=" << proc_name
                    << " args=" << args.value().size() << "B";
  }

  auto result = it->second.handler(proc.value(), args.value());
  if (!result.ok()) {
    reply.PutUint32(kReplyError);
    reply.PutUint32(static_cast<uint32_t>(result.status().code()));
    reply.PutString(result.status().message());
    return reply.Take();
  }
  reply.PutUint32(kReplyAccepted);
  reply.PutOpaque(result.value());
  return reply.Take();
}

util::Result<util::Bytes> Client::Call(uint32_t proc, const util::Bytes& args) {
  uint32_t xid = next_xid_++;
  ++calls_made_;
  xdr::Encoder call;
  call.PutUint32(xid);
  call.PutUint32(prog_);
  call.PutUint32(proc);
  call.PutOpaque(args);

  ASSIGN_OR_RETURN(util::Bytes raw_reply, transport_->Roundtrip(call.Take()));

  xdr::Decoder dec(std::move(raw_reply));
  ASSIGN_OR_RETURN(uint32_t reply_xid, dec.GetUint32());
  if (reply_xid != xid) {
    return util::SecurityError("RPC: reply xid mismatch");
  }
  ASSIGN_OR_RETURN(uint32_t status, dec.GetUint32());
  if (status == kReplyAccepted) {
    ASSIGN_OR_RETURN(util::Bytes results, dec.GetOpaque());
    if (!dec.AtEnd()) {
      return util::InvalidArgument("RPC: trailing bytes in reply");
    }
    return results;
  }
  ASSIGN_OR_RETURN(uint32_t code, dec.GetUint32());
  ASSIGN_OR_RETURN(std::string message, dec.GetString());
  if (code == 0 || code > static_cast<uint32_t>(util::ErrorCode::kInternal)) {
    code = static_cast<uint32_t>(util::ErrorCode::kInternal);
  }
  return util::Status(static_cast<util::ErrorCode>(code), message);
}

}  // namespace rpc
