#include "src/auth/authserver.h"

#include "src/crypto/rabin.h"
#include "src/xdr/xdr.h"

namespace auth {

util::Bytes MakeSignedAuthReqBody(const util::Bytes& auth_id, uint32_t seqno) {
  xdr::Encoder enc;
  enc.PutString("SignedAuthReq");
  enc.PutOpaque(auth_id);
  enc.PutUint32(seqno);
  return enc.Take();
}

util::Status AuthServer::RegisterUser(PublicUserRecord record) {
  if (record.name.empty() || record.public_key.empty()) {
    return util::InvalidArgument("user record needs a name and a public key");
  }
  if (by_name_.count(record.name) != 0) {
    return util::AlreadyExists("user already registered: " + record.name);
  }
  std::string key_str = util::StringOf(record.public_key);
  if (key_to_name_.count(key_str) != 0) {
    return util::AlreadyExists("public key already registered");
  }
  key_to_name_[key_str] = record.name;
  by_name_[record.name] = std::move(record);
  return util::OkStatus();
}

util::Status AuthServer::UpdatePrivateRecord(const std::string& name,
                                             PrivateUserRecord record) {
  if (by_name_.count(name) == 0) {
    return util::NotFound("no such user: " + name);
  }
  private_db_[name] = std::move(record);
  return util::OkStatus();
}

util::Status AuthServer::ChangePublicKey(const std::string& name,
                                         const util::Bytes& new_key) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return util::NotFound("no such user: " + name);
  }
  std::string new_key_str = util::StringOf(new_key);
  if (key_to_name_.count(new_key_str) != 0) {
    return util::AlreadyExists("public key already registered");
  }
  key_to_name_.erase(util::StringOf(it->second.public_key));
  it->second.public_key = new_key;
  key_to_name_[new_key_str] = name;
  return util::OkStatus();
}

util::Status AuthServer::AddGroup(const std::string& group_name, uint32_t gid,
                                  std::vector<std::string> members) {
  if (group_name.empty()) {
    return util::InvalidArgument("group needs a name");
  }
  if (groups_.count(group_name) != 0) {
    return util::AlreadyExists("group already exists: " + group_name);
  }
  Group group;
  group.gid = gid;
  group.members.insert(members.begin(), members.end());
  groups_[group_name] = std::move(group);
  return util::OkStatus();
}

util::Status AuthServer::AddGroupMember(const std::string& group_name,
                                        const std::string& user) {
  auto it = groups_.find(group_name);
  if (it == groups_.end()) {
    return util::NotFound("no such group: " + group_name);
  }
  it->second.members.insert(user);
  return util::OkStatus();
}

nfs::Credentials AuthServer::EffectiveCredentials(const PublicUserRecord& record) const {
  nfs::Credentials creds = record.credentials;
  for (const auto& [name, group] : groups_) {
    if (group.members.count(record.name) != 0 && !creds.HasGid(group.gid)) {
      creds.gids.push_back(group.gid);
    }
  }
  return creds;
}

void AuthServer::ImportPublicDatabase(const AuthServer* other) { imports_.push_back(other); }

util::Result<nfs::Credentials> AuthServer::ValidateAuthMsg(const util::Bytes& auth_msg,
                                                           const util::Bytes& auth_id,
                                                           uint32_t seqno) {
  ++validations_;
  xdr::Decoder dec(auth_msg);
  auto fail = [this](std::string msg) -> util::Status {
    ++failed_validations_;
    return util::SecurityError(std::move(msg));
  };

  auto pubkey_bytes = dec.GetOpaque();
  auto signature = dec.GetOpaque();
  if (!pubkey_bytes.ok() || !signature.ok() || !dec.AtEnd()) {
    return fail("malformed AuthMsg");
  }
  auto record = FindByKey(pubkey_bytes.value());
  if (!record.has_value()) {
    return fail("unknown public key");
  }
  auto pubkey = crypto::RabinPublicKey::Deserialize(pubkey_bytes.value());
  if (!pubkey.ok()) {
    return fail("undecodable public key");
  }
  util::Bytes body = MakeSignedAuthReqBody(auth_id, seqno);
  util::Status sig_status = pubkey->Verify(body, signature.value());
  if (!sig_status.ok()) {
    return fail("bad signature on authentication request");
  }
  return EffectiveCredentials(*record);
}

util::Result<const crypto::SrpVerifier*> AuthServer::SrpVerifierFor(
    const std::string& name) const {
  auto it = private_db_.find(name);
  if (it == private_db_.end() || !it->second.srp.has_value()) {
    return util::NotFound("no SRP record for user: " + name);
  }
  return &*it->second.srp;
}

util::Result<const PrivateUserRecord*> AuthServer::PrivateRecordFor(
    const std::string& name) const {
  auto it = private_db_.find(name);
  if (it == private_db_.end()) {
    return util::NotFound("no private record for user: " + name);
  }
  return &it->second;
}

std::optional<PublicUserRecord> AuthServer::FindByName(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    return it->second;
  }
  for (const AuthServer* import : imports_) {
    auto found = import->FindByName(name);
    if (found.has_value()) {
      return found;
    }
  }
  return std::nullopt;
}

std::optional<PublicUserRecord> AuthServer::FindByKey(const util::Bytes& public_key) const {
  auto it = key_to_name_.find(util::StringOf(public_key));
  if (it != key_to_name_.end()) {
    return by_name_.at(it->second);
  }
  for (const AuthServer* import : imports_) {
    auto found = import->FindByKey(public_key);
    if (found.has_value()) {
      return found;
    }
  }
  return std::nullopt;
}

std::optional<PublicUserRecord> AuthServer::FindByUid(uint32_t uid) const {
  for (const auto& [name, record] : by_name_) {
    if (record.credentials.uid == uid) {
      return record;
    }
  }
  for (const AuthServer* import : imports_) {
    auto found = import->FindByUid(uid);
    if (found.has_value()) {
      return found;
    }
  }
  return std::nullopt;
}

std::vector<PublicUserRecord> AuthServer::PublicDatabase() const {
  std::vector<PublicUserRecord> out;
  out.reserve(by_name_.size());
  for (const auto& [name, record] : by_name_) {
    out.push_back(record);
  }
  return out;
}

}  // namespace auth
