// The SFS authentication server ("authserv", paper §2.5).
//
// authserv translates signed user-authentication requests into local Unix
// credentials by consulting databases that map public keys to users.  It
// also stores, per user, the SRP verifier and an encrypted copy of the
// user's private key, letting sfskey bootstrap secure access from nothing
// but a password (§2.4 "Password authentication").
//
// Databases come in writable and read-only flavors; a server can import
// another server's *public* database (public keys and credentials, never
// SRP data or encrypted keys), the paper's "central server ... exports
// its public database to separately-administered file servers without
// trusting them" arrangement.
#ifndef SFS_SRC_AUTH_AUTHSERVER_H_
#define SFS_SRC_AUTH_AUTHSERVER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/crypto/srp.h"
#include "src/nfs/types.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace auth {

// Public half of a user record: safe to export to untrusted servers.
struct PublicUserRecord {
  std::string name;
  util::Bytes public_key;  // Serialized Rabin public key.
  nfs::Credentials credentials;
};

// Private half: password-derived material.  A server that knows this can
// mount (slow, eksblowfish-rate) guessing attacks, so it never leaves the
// user's own authserver.
struct PrivateUserRecord {
  std::optional<crypto::SrpVerifier> srp;
  // The user's private key, encrypted with a key derived from the same
  // password via eksblowfish (a "safe design because the server never
  // sees any password-equivalent data").
  util::Bytes encrypted_private_key;
};

// A parsed authentication request (paper §3.1.2):
//   SignedAuthReq = {"SignedAuthReq", AuthID, SeqNo}
//   AuthMsg       = {K_user, sign(SignedAuthReq)}
util::Bytes MakeSignedAuthReqBody(const util::Bytes& auth_id, uint32_t seqno);

class AuthServer {
 public:
  AuthServer() = default;

  // --- Management (sfskey-style operations) ---
  util::Status RegisterUser(PublicUserRecord record);
  util::Status UpdatePrivateRecord(const std::string& name, PrivateUserRecord record);
  util::Status ChangePublicKey(const std::string& name, const util::Bytes& new_key);

  // --- Groups ---
  // Validation returns "a user ID and list of group IDs" (§2.5.1); groups
  // registered here are folded into every member's credentials.
  util::Status AddGroup(const std::string& group_name, uint32_t gid,
                        std::vector<std::string> members);
  util::Status AddGroupMember(const std::string& group_name, const std::string& user);

  // Imports another server's public database read-only.  Lookups consult
  // the local (writable) database first.
  void ImportPublicDatabase(const AuthServer* other);

  // --- The file server's validation path ---
  // Verifies an AuthMsg against the expected AuthID and sequence number;
  // returns the mapped credentials.
  util::Result<nfs::Credentials> ValidateAuthMsg(const util::Bytes& auth_msg,
                                                 const util::Bytes& auth_id, uint32_t seqno);

  // --- SRP service (driven by the SFS connection layer) ---
  util::Result<const crypto::SrpVerifier*> SrpVerifierFor(const std::string& name) const;
  util::Result<const PrivateUserRecord*> PrivateRecordFor(const std::string& name) const;

  // --- Introspection ---
  std::optional<PublicUserRecord> FindByName(const std::string& name) const;
  std::optional<PublicUserRecord> FindByKey(const util::Bytes& public_key) const;
  // Reverse credential lookup (libsfs ID mapping, paper §3.3).
  std::optional<PublicUserRecord> FindByUid(uint32_t uid) const;
  // The exportable public database.
  std::vector<PublicUserRecord> PublicDatabase() const;

  uint64_t validations() const { return validations_; }
  uint64_t failed_validations() const { return failed_validations_; }

 private:
  // Credentials for `record` with group memberships folded in.
  nfs::Credentials EffectiveCredentials(const PublicUserRecord& record) const;

  struct Group {
    uint32_t gid = 0;
    std::set<std::string> members;
  };

  std::map<std::string, PublicUserRecord> by_name_;
  std::map<std::string, std::string> key_to_name_;  // Key bytes -> user name.
  std::map<std::string, PrivateUserRecord> private_db_;
  std::map<std::string, Group> groups_;
  std::vector<const AuthServer*> imports_;
  uint64_t validations_ = 0;
  uint64_t failed_validations_ = 0;
};

}  // namespace auth

#endif  // SFS_SRC_AUTH_AUTHSERVER_H_
