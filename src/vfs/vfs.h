// The client "kernel" boundary: POSIX-style path operations over a mount
// table, with the /sfs namespace magic of the paper wired in.
//
// Resolution walks components, following symlinks (limit 40).  The /sfs
// directory is virtual:
//   * a component that parses as Location:HostID triggers the
//     automounter — the client daemon dials, certifies, and mounts the
//     remote file system transparently (§2.2: "the client transparently
//     creates the referenced pathname and mounts the remote file system
//     there"), after consulting the user's agent for revocations and
//     HostID blocks;
//   * any other name is referred to the user's agent, which can answer
//     from its dynamic links (bookmarks, manual key distribution) or by
//     searching its certification path for a matching symlink (§2.4);
//   * directory listings of /sfs show only what this agent has accessed
//     (§2.3) — the defense against HostID-completion spoofing.
//
// Because every operation carries a UserContext, one Vfs instance models
// a multi-user client machine; users with different agents get different
// /sfs views while sharing each mount's cache.
#ifndef SFS_SRC_VFS_VFS_H_
#define SFS_SRC_VFS_VFS_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/agent/agent.h"
#include "src/nfs/api.h"
#include "src/obs/span.h"
#include "src/sfs/client.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace vfs {

struct UserContext {
  nfs::Credentials creds;
  agent::Agent* agent = nullptr;

  static UserContext For(uint32_t uid, agent::Agent* agent = nullptr) {
    UserContext ctx;
    ctx.creds = nfs::Credentials::User(uid, {uid});
    ctx.agent = agent;
    return ctx;
  }

  // The ssu utility (paper §2.3): operations performed as the local
  // super-user map to the invoking *user's* agent, so root shells keep
  // the user's /sfs view and keys without any extra privilege.
  static UserContext Ssu(agent::Agent* users_agent) { return For(0, users_agent); }
};

struct OpenFlags {
  bool read = true;
  bool write = false;
  bool create = false;
  bool truncate = false;
  bool exclusive = false;
  uint32_t mode = 0644;

  static OpenFlags ReadOnly() { return OpenFlags{}; }
  static OpenFlags WriteOnly() {
    OpenFlags f;
    f.read = false;
    f.write = true;
    return f;
  }
  static OpenFlags CreateRw(uint32_t mode = 0644) {
    OpenFlags f;
    f.write = true;
    f.create = true;
    f.truncate = true;
    f.mode = mode;
    return f;
  }
};

class Vfs;

// An open file descriptor.
class OpenFile {
 public:
  OpenFile() = default;

  util::Result<util::Bytes> Pread(uint64_t offset, uint32_t count);
  util::Status Pwrite(uint64_t offset, const util::Bytes& data);
  // Sequential variants maintaining a file position.
  util::Result<util::Bytes> Read(uint32_t count);
  util::Status Write(const util::Bytes& data);
  util::Result<nfs::Fattr> Stat();
  util::Status SetAttr(const nfs::Sattr& sattr);
  // Flushes written data to stable storage (NFS COMMIT) and closes.
  util::Status Close();

  uint64_t position() const { return position_; }
  const nfs::FileHandle& handle() const { return fh_; }

 private:
  friend class Vfs;

  // Flushes the write-behind buffer to the server.
  util::Status FlushWrites();

  Vfs* vfs_ = nullptr;
  nfs::FileSystemApi* fs_ = nullptr;
  nfs::FileHandle fh_;
  nfs::Credentials creds_;
  uint64_t position_ = 0;
  bool writable_ = false;
  bool dirty_ = false;
  bool open_ = false;

  // Kernel-buffer-cache behavior: sequential reads pull a 32 KB
  // read-ahead window; sequential writes gather into 32 KB WRITE RPCs.
  // Real NFS3 clients pipeline I/O this way, and without it no remote
  // file system approaches wire bandwidth.
  static constexpr uint32_t kReadAheadBytes = 32768;
  util::Bytes ra_buf_;
  uint64_t ra_offset_ = 0;
  uint64_t last_read_end_ = ~uint64_t{0};
  util::Bytes wb_buf_;
  uint64_t wb_offset_ = 0;
};

class Vfs {
 public:
  // `registry` receives the "vfs.*" root spans opened around each
  // operation while span tracing is enabled; nullptr selects
  // obs::Registry::Default().
  Vfs(sim::Clock* clock, const sim::CostModel* costs, obs::Registry* registry = nullptr)
      : clock_(clock),
        costs_(costs),
        spans_(&(registry != nullptr ? registry : obs::Registry::Default())->spans()) {}

  // Configures the root ("/") file system.
  void MountRoot(nfs::FileSystemApi* fs, nfs::FileHandle root_fh);
  // Enables the /sfs namespace, served by this client daemon.
  void EnableSfs(sfs::SfsClient* client);
  // Pre-mounts a file system (typically a verified read-only dialect
  // client, e.g. a certification authority) at /sfs/<component>.  Like
  // real sfscd dialect hand-off, this is configuration, not per-user
  // state: the mount is visible to every agent.
  void AddStaticSfsMount(const std::string& component, nfs::FileSystemApi* fs,
                         nfs::FileHandle root_fh);

  // --- POSIX-ish operations (absolute paths) ---
  util::Result<OpenFile> Open(const UserContext& user, const std::string& path,
                              const OpenFlags& flags);
  util::Status Mkdir(const UserContext& user, const std::string& path, uint32_t mode = 0755);
  util::Status Symlink(const UserContext& user, const std::string& target,
                       const std::string& link_path);
  util::Status Unlink(const UserContext& user, const std::string& path);
  util::Status Rmdir(const UserContext& user, const std::string& path);
  util::Status Rename(const UserContext& user, const std::string& from, const std::string& to);
  // Hard link: `new_path` becomes another name for `existing_path` (same
  // file system only).
  util::Status HardLink(const UserContext& user, const std::string& existing_path,
                        const std::string& new_path);
  util::Result<nfs::Fattr> Stat(const UserContext& user, const std::string& path);
  util::Result<nfs::Fattr> Lstat(const UserContext& user, const std::string& path);
  util::Result<std::string> ReadLink(const UserContext& user, const std::string& path);
  util::Status Chmod(const UserContext& user, const std::string& path, uint32_t mode);
  util::Status Truncate(const UserContext& user, const std::string& path, uint64_t size);
  util::Result<std::vector<std::string>> ListDir(const UserContext& user,
                                                 const std::string& path);
  // Canonical path after following every symlink — what pwd prints, and
  // the basis of the secure-bookmarks idiom (§2.4).
  util::Result<std::string> Realpath(const UserContext& user, const std::string& path);
  // statfs(2): capacity of the file system containing `path`.
  struct FsUsage {
    uint64_t total_bytes = 0;
    uint64_t used_bytes = 0;
  };
  util::Result<FsUsage> StatFs(const UserContext& user, const std::string& path);

  sim::Clock* clock() { return clock_; }

 private:
  friend class OpenFile;

  // A position in the namespace during resolution.
  struct Vnode {
    enum class Kind { kRoot, kSfsDir, kReal };
    Kind kind = Kind::kRoot;
    nfs::FileSystemApi* fs = nullptr;
    nfs::FileHandle fh;
    std::string canonical;  // Canonical absolute path of this vnode.
  };

  util::Result<Vnode> Resolve(const UserContext& user, const std::string& path,
                              bool follow_terminal_symlink, int* depth);
  // Resolves all but the last component; returns the parent and leaf name.
  util::Result<Vnode> ResolveParent(const UserContext& user, const std::string& path,
                                    std::string* leaf, int* depth);
  // Handles one lookup step under the virtual /sfs directory.
  util::Result<std::optional<std::string>> SfsComponentTarget(const UserContext& user,
                                                              const std::string& component,
                                                              int* depth, Vnode* out);
  // Mounts (and per-user authenticates) a self-certifying path.
  util::Result<Vnode> MountSelfCertifying(const UserContext& user,
                                          const sfs::SelfCertifyingPath& path);
  // Consults the agent's revocation directories for a certificate naming
  // this HostID (paper §2.6); found certificates are verified and added
  // to the agent.
  void CheckRevocationDirs(const UserContext& user, const sfs::SelfCertifyingPath& path,
                           int* depth);

  static std::vector<std::string> SplitPath(const std::string& path);

  sim::Clock* clock_;
  const sim::CostModel* costs_;
  obs::SpanCollector* spans_;
  nfs::FileSystemApi* root_fs_ = nullptr;
  nfs::FileHandle root_fh_;
  sfs::SfsClient* sfs_client_ = nullptr;
  // Per-agent record of /sfs names accessed (drives /sfs listings).
  std::map<const agent::Agent*, std::set<std::string>> sfs_accessed_;
  // Static /sfs mounts (read-only dialect file systems).
  struct StaticMount {
    nfs::FileSystemApi* fs;
    nfs::FileHandle root_fh;
  };
  std::map<std::string, StaticMount> static_sfs_mounts_;
};

}  // namespace vfs

#endif  // SFS_SRC_VFS_VFS_H_
