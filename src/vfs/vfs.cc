#include "src/vfs/vfs.h"

#include <deque>

#include "src/util/log.h"

namespace vfs {
namespace {

constexpr int kMaxSymlinkDepth = 40;

util::Status NfsError(nfs::Stat s, const std::string& context) {
  return nfs::ToStatus(s, context);
}

nfs::Fattr SyntheticDirAttr(uint64_t fileid) {
  nfs::Fattr attr;
  attr.type = nfs::FileType::kDirectory;
  attr.mode = 0555;
  attr.nlink = 2;
  attr.fileid = fileid;
  return attr;
}

}  // namespace

void Vfs::MountRoot(nfs::FileSystemApi* fs, nfs::FileHandle root_fh) {
  root_fs_ = fs;
  root_fh_ = std::move(root_fh);
}

void Vfs::EnableSfs(sfs::SfsClient* client) { sfs_client_ = client; }

void Vfs::AddStaticSfsMount(const std::string& component, nfs::FileSystemApi* fs,
                            nfs::FileHandle root_fh) {
  static_sfs_mounts_[component] = StaticMount{fs, std::move(root_fh)};
}

void Vfs::CheckRevocationDirs(const UserContext& user, const sfs::SelfCertifyingPath& path,
                              int* depth) {
  if (user.agent == nullptr || user.agent->IsRevoked(path)) {
    return;
  }
  std::string cert_name = util::Base32Encode(path.host_id);
  for (const std::string& dir : user.agent->revocation_dirs()) {
    std::string cert_path = dir;
    if (cert_path.empty() || cert_path.back() != '/') {
      cert_path.push_back('/');
    }
    cert_path += cert_name;
    auto vnode = Resolve(user, cert_path, /*follow_terminal_symlink=*/true, depth);
    if (!vnode.ok()) {
      continue;
    }
    // Read the whole certificate file.
    nfs::Fattr attr;
    if (vnode->fs->GetAttr(vnode->fh, &attr) != nfs::Stat::kOk ||
        attr.type != nfs::FileType::kRegular || attr.size > 65536) {
      continue;
    }
    util::Bytes blob;
    bool eof = false;
    if (vnode->fs->Read(vnode->fh, user.creds, 0, static_cast<uint32_t>(attr.size), &blob,
                        &eof) != nfs::Stat::kOk) {
      continue;
    }
    auto cert = sfs::PathRevokeCert::Deserialize(blob);
    if (!cert.ok()) {
      continue;
    }
    // AddRevocation verifies the signature and that the certificate is a
    // true revocation; a bogus file in the directory is simply ignored.
    if (cert->RevokedPath().host_id == path.host_id) {
      user.agent->AddRevocation(cert.value());
      return;
    }
  }
}

std::vector<std::string> Vfs::SplitPath(const std::string& path) {
  std::vector<std::string> out;
  std::string current;
  for (char c : path) {
    if (c == '/') {
      if (!current.empty()) {
        out.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) {
    out.push_back(current);
  }
  return out;
}

util::Result<Vfs::Vnode> Vfs::MountSelfCertifying(const UserContext& user,
                                                  const sfs::SelfCertifyingPath& path) {
  // The agent gets the first word on revocation and blocking (§2.6).
  if (user.agent != nullptr) {
    if (user.agent->IsRevoked(path)) {
      return util::SecurityError("pathname revoked (resolves to " +
                                 std::string(sfs::kRevokedLinkTarget) + ")");
    }
    if (user.agent->IsBlocked(path)) {
      return util::SecurityError("HostID blocked by agent (resolves to " +
                                 std::string(sfs::kRevokedLinkTarget) + ")");
    }
  }
  ASSIGN_OR_RETURN(sfs::SfsClient::MountPoint * mount, sfs_client_->Mount(path));

  // First touch by this user: run the Figure 4 authentication, trying the
  // agent's keys in succession; fall back to anonymous.
  uint32_t uid = user.creds.uid;
  if (!mount->HasAuthState(uid)) {
    bool authenticated = false;
    if (user.agent != nullptr) {
      for (size_t i = 0; i < user.agent->key_count(); ++i) {
        agent::Agent* ag = user.agent;
        auto signer = [ag, i](const util::Bytes& info,
                              uint32_t seqno) -> std::optional<util::Bytes> {
          return ag->SignAuthRequest(i, info, seqno);
        };
        util::Status status = mount->Authenticate(uid, signer);
        if (status.ok() && mount->AuthnoFor(uid) != sfs::kAnonymousAuthno) {
          authenticated = true;
          break;
        }
      }
    }
    if (!authenticated && !mount->HasAuthState(uid)) {
      mount->Authenticate(uid, [](const util::Bytes&, uint32_t) { return std::nullopt; });
    }
  }
  if (user.agent != nullptr) {
    sfs_accessed_[user.agent].insert(path.ComponentName());
  }

  Vnode out;
  out.kind = Vnode::Kind::kReal;
  out.fs = mount->fs();
  out.fh = mount->root_fh();
  out.canonical = path.FullPath();
  return out;
}

util::Result<std::optional<std::string>> Vfs::SfsComponentTarget(const UserContext& user,
                                                                 const std::string& component,
                                                                 int* depth, Vnode* out) {
  auto static_mount = static_sfs_mounts_.find(component);
  if (static_mount != static_sfs_mounts_.end()) {
    out->kind = Vnode::Kind::kReal;
    out->fs = static_mount->second.fs;
    out->fh = static_mount->second.root_fh;
    out->canonical = std::string(sfs::kSfsRoot) + "/" + component;
    if (user.agent != nullptr) {
      sfs_accessed_[user.agent].insert(component);
    }
    return std::optional<std::string>();
  }

  auto parsed = sfs::SelfCertifyingPath::Parse(component);
  if (parsed.ok()) {
    // Revocation check (paper §2.6): the agent consults its revocation
    // directories before the client will touch a new HostID.
    CheckRevocationDirs(user, parsed.value(), depth);
    ASSIGN_OR_RETURN(*out, MountSelfCertifying(user, parsed.value()));
    return std::optional<std::string>();  // Mounted; no redirect.
  }

  if (user.agent == nullptr) {
    return util::NotFound("/sfs/" + component + ": no such file (no agent)");
  }

  // Agent dynamic links (secure bookmarks, manual key distribution, links
  // created on the fly).
  auto link = user.agent->LookupLink(component);
  if (link.has_value()) {
    return std::optional<std::string>(*link);
  }

  // Certification paths: search each directory for a symlink of the same
  // name; on a hit, create the on-the-fly /sfs link (§2.4).
  for (const std::string& dir : user.agent->cert_path()) {
    std::string candidate = dir;
    if (candidate.empty() || candidate.back() != '/') {
      candidate.push_back('/');
    }
    candidate += component;
    auto vnode = Resolve(user, candidate, /*follow_terminal_symlink=*/false, depth);
    if (!vnode.ok()) {
      continue;
    }
    nfs::Fattr attr;
    if (vnode->fs->GetAttr(vnode->fh, &attr) != nfs::Stat::kOk) {
      continue;
    }
    std::string target;
    if (attr.type == nfs::FileType::kSymlink &&
        vnode->fs->ReadLink(vnode->fh, user.creds, &target) == nfs::Stat::kOk) {
      user.agent->AddLink(component, target);
      return std::optional<std::string>(target);
    }
    if (attr.type == nfs::FileType::kDirectory) {
      // A real directory entry in the certification path also works: the
      // /sfs name aliases it.
      user.agent->AddLink(component, vnode->canonical);
      return std::optional<std::string>(vnode->canonical);
    }
  }
  return util::NotFound("/sfs/" + component + ": no such file");
}

util::Result<Vfs::Vnode> Vfs::Resolve(const UserContext& user, const std::string& path,
                                      bool follow_terminal_symlink, int* depth) {
  if (root_fs_ == nullptr) {
    return util::FailedPrecondition("no root file system mounted");
  }
  if (path.empty() || path[0] != '/') {
    return util::InvalidArgument("path must be absolute: " + path);
  }

  Vnode current;
  current.kind = Vnode::Kind::kRoot;
  current.fs = root_fs_;
  current.fh = root_fh_;
  current.canonical = "";

  std::vector<Vnode> ancestry;
  std::deque<std::string> todo;
  for (std::string& c : SplitPath(path)) {
    todo.push_back(std::move(c));
  }

  while (!todo.empty()) {
    std::string component = std::move(todo.front());
    todo.pop_front();
    if (component == ".") {
      continue;
    }
    if (component == "..") {
      if (!ancestry.empty()) {
        current = ancestry.back();
        ancestry.pop_back();
      }
      continue;
    }
    bool is_last = todo.empty();

    Vnode next;
    if (current.kind == Vnode::Kind::kSfsDir) {
      ASSIGN_OR_RETURN(std::optional<std::string> redirect,
                       SfsComponentTarget(user, component, depth, &next));
      if (redirect.has_value()) {
        // Acts as a symlink at /sfs/<component>.
        if (++*depth > kMaxSymlinkDepth) {
          return util::InvalidArgument("too many levels of symbolic links");
        }
        std::vector<std::string> target_parts = SplitPath(*redirect);
        for (auto it = target_parts.rbegin(); it != target_parts.rend(); ++it) {
          todo.push_front(*it);
        }
        if (!redirect->empty() && (*redirect)[0] == '/') {
          ancestry.clear();
          current.kind = Vnode::Kind::kRoot;
          current.fs = root_fs_;
          current.fh = root_fh_;
          current.canonical = "";
        }
        continue;
      }
      // Mounted a remote file system; `next` is its root.
    } else {
      if (current.kind == Vnode::Kind::kRoot && component == "sfs" &&
          sfs_client_ != nullptr) {
        next.kind = Vnode::Kind::kSfsDir;
        next.canonical = "/sfs";
      } else {
        nfs::FileHandle child_fh;
        nfs::Fattr attr;
        nfs::Stat s = current.fs->Lookup(current.fh, component, user.creds, &child_fh, &attr);
        if (s != nfs::Stat::kOk) {
          return NfsError(s, current.canonical + "/" + component);
        }
        if (attr.type == nfs::FileType::kSymlink &&
            (!is_last || follow_terminal_symlink)) {
          if (++*depth > kMaxSymlinkDepth) {
            return util::InvalidArgument("too many levels of symbolic links");
          }
          std::string target;
          nfs::Stat rs = current.fs->ReadLink(child_fh, user.creds, &target);
          if (rs != nfs::Stat::kOk) {
            return NfsError(rs, "readlink " + current.canonical + "/" + component);
          }
          std::vector<std::string> target_parts = SplitPath(target);
          for (auto it = target_parts.rbegin(); it != target_parts.rend(); ++it) {
            todo.push_front(*it);
          }
          if (!target.empty() && target[0] == '/') {
            ancestry.clear();
            current.kind = Vnode::Kind::kRoot;
            current.fs = root_fs_;
            current.fh = root_fh_;
            current.canonical = "";
          }
          continue;  // Stay in the same directory for relative targets.
        }
        next.kind = Vnode::Kind::kReal;
        next.fs = current.fs;
        next.fh = child_fh;
        next.canonical = current.canonical + "/" + component;
      }
    }
    ancestry.push_back(current);
    current = next;
  }
  if (current.kind == Vnode::Kind::kRoot) {
    current.canonical = "/";
  }
  return current;
}

util::Result<Vfs::Vnode> Vfs::ResolveParent(const UserContext& user, const std::string& path,
                                            std::string* leaf, int* depth) {
  if (path.empty() || path[0] != '/') {
    return util::InvalidArgument("path must be absolute: " + path);
  }
  std::vector<std::string> parts = SplitPath(path);
  if (parts.empty()) {
    return util::InvalidArgument("cannot operate on /");
  }
  *leaf = parts.back();
  if (*leaf == "." || *leaf == "..") {
    return util::InvalidArgument("invalid final path component");
  }
  std::string parent = "/";
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    parent += parts[i];
    parent += '/';
  }
  ASSIGN_OR_RETURN(Vnode vnode, Resolve(user, parent, /*follow_terminal_symlink=*/true, depth));
  if (vnode.kind == Vnode::Kind::kSfsDir) {
    return util::PermissionDenied("/sfs is not writable");
  }
  return vnode;
}

util::Result<OpenFile> Vfs::Open(const UserContext& user, const std::string& path,
                                 const OpenFlags& flags) {
  obs::ScopedSpan op_span(spans_, "vfs.open", "vfs", path);
  clock_->Advance(costs_->syscall_ns, obs::TimeCategory::kSyscall);
  int depth = 0;

  nfs::FileSystemApi* fs = nullptr;
  nfs::FileHandle fh;
  nfs::Fattr attr;

  if (flags.create) {
    std::string leaf;
    ASSIGN_OR_RETURN(Vnode parent, ResolveParent(user, path, &leaf, &depth));
    nfs::FileHandle existing;
    nfs::Stat s = parent.fs->Lookup(parent.fh, leaf, user.creds, &existing, &attr);
    if (s == nfs::Stat::kOk) {
      if (flags.exclusive) {
        return util::AlreadyExists(path);
      }
      if (attr.type == nfs::FileType::kSymlink) {
        // O_CREAT on an existing symlink: follow it.
        ASSIGN_OR_RETURN(Vnode vnode, Resolve(user, path, true, &depth));
        fs = vnode.fs;
        fh = vnode.fh;
        nfs::Stat gs = fs->GetAttr(fh, &attr);
        if (gs != nfs::Stat::kOk) {
          return NfsError(gs, path);
        }
      } else {
        fs = parent.fs;
        fh = existing;
      }
    } else if (s == nfs::Stat::kNoEnt) {
      nfs::Sattr sattr;
      sattr.mode = flags.mode;
      nfs::Stat cs = parent.fs->Create(parent.fh, leaf, user.creds, sattr, &fh, &attr);
      if (cs != nfs::Stat::kOk) {
        return NfsError(cs, "create " + path);
      }
      fs = parent.fs;
    } else {
      return NfsError(s, path);
    }
  } else {
    ASSIGN_OR_RETURN(Vnode vnode, Resolve(user, path, true, &depth));
    if (vnode.kind != Vnode::Kind::kReal && vnode.kind != Vnode::Kind::kRoot) {
      return util::InvalidArgument("cannot open " + path);
    }
    fs = vnode.fs;
    fh = vnode.fh;
    nfs::Stat gs = fs->GetAttr(fh, &attr);
    if (gs != nfs::Stat::kOk) {
      return NfsError(gs, path);
    }
  }

  if (attr.type == nfs::FileType::kDirectory && flags.write) {
    return util::InvalidArgument(path + ": is a directory");
  }

  // Close-to-open consistency hook: a caching mount revalidates here so
  // this opener sees everything any client's earlier Close published.
  nfs::Stat os = fs->Open(fh, user.creds);
  if (os != nfs::Stat::kOk) {
    return NfsError(os, path);
  }

  // The open-time permission check (the ACCESS RPC pattern of real NFS3
  // clients; served from the access cache on SFS mounts).
  uint32_t want = 0;
  if (flags.read) {
    want |= nfs::kAccessRead;
  }
  if (flags.write) {
    want |= nfs::kAccessModify;
  }
  if (want != 0) {
    uint32_t allowed = 0;
    nfs::Stat as = fs->Access(fh, user.creds, want, &allowed);
    if (as != nfs::Stat::kOk) {
      return NfsError(as, path);
    }
    if ((allowed & want) != want) {
      return util::PermissionDenied(path);
    }
  }

  if (flags.truncate && flags.write && attr.size > 0) {
    nfs::Sattr sattr;
    sattr.size = 0;
    nfs::Stat ts = fs->SetAttr(fh, user.creds, sattr, &attr);
    if (ts != nfs::Stat::kOk) {
      return NfsError(ts, "truncate " + path);
    }
  }

  OpenFile file;
  file.vfs_ = this;
  file.fs_ = fs;
  file.fh_ = fh;
  file.creds_ = user.creds;
  file.writable_ = flags.write;
  file.open_ = true;
  return file;
}

util::Status Vfs::Mkdir(const UserContext& user, const std::string& path, uint32_t mode) {
  obs::ScopedSpan op_span(spans_, "vfs.mkdir", "vfs", path);
  clock_->Advance(costs_->syscall_ns, obs::TimeCategory::kSyscall);
  int depth = 0;
  std::string leaf;
  ASSIGN_OR_RETURN(Vnode parent, ResolveParent(user, path, &leaf, &depth));
  nfs::FileHandle out;
  nfs::Fattr attr;
  return NfsError(parent.fs->Mkdir(parent.fh, leaf, user.creds, mode, &out, &attr), path);
}

util::Status Vfs::Symlink(const UserContext& user, const std::string& target,
                          const std::string& link_path) {
  obs::ScopedSpan op_span(spans_, "vfs.symlink", "vfs", link_path);
  clock_->Advance(costs_->syscall_ns, obs::TimeCategory::kSyscall);
  int depth = 0;
  std::string leaf;
  ASSIGN_OR_RETURN(Vnode parent, ResolveParent(user, link_path, &leaf, &depth));
  nfs::FileHandle out;
  nfs::Fattr attr;
  return NfsError(parent.fs->Symlink(parent.fh, leaf, target, user.creds, &out, &attr),
                  link_path);
}

util::Status Vfs::Unlink(const UserContext& user, const std::string& path) {
  obs::ScopedSpan op_span(spans_, "vfs.unlink", "vfs", path);
  clock_->Advance(costs_->syscall_ns, obs::TimeCategory::kSyscall);
  int depth = 0;
  std::string leaf;
  ASSIGN_OR_RETURN(Vnode parent, ResolveParent(user, path, &leaf, &depth));
  return NfsError(parent.fs->Remove(parent.fh, leaf, user.creds), path);
}

util::Status Vfs::Rmdir(const UserContext& user, const std::string& path) {
  obs::ScopedSpan op_span(spans_, "vfs.rmdir", "vfs", path);
  clock_->Advance(costs_->syscall_ns, obs::TimeCategory::kSyscall);
  int depth = 0;
  std::string leaf;
  ASSIGN_OR_RETURN(Vnode parent, ResolveParent(user, path, &leaf, &depth));
  return NfsError(parent.fs->Rmdir(parent.fh, leaf, user.creds), path);
}

util::Status Vfs::Rename(const UserContext& user, const std::string& from,
                         const std::string& to) {
  obs::ScopedSpan op_span(spans_, "vfs.rename", "vfs", from);
  clock_->Advance(costs_->syscall_ns, obs::TimeCategory::kSyscall);
  int depth = 0;
  std::string from_leaf;
  std::string to_leaf;
  ASSIGN_OR_RETURN(Vnode from_parent, ResolveParent(user, from, &from_leaf, &depth));
  ASSIGN_OR_RETURN(Vnode to_parent, ResolveParent(user, to, &to_leaf, &depth));
  if (from_parent.fs != to_parent.fs) {
    return util::InvalidArgument("rename across file systems");
  }
  return NfsError(
      from_parent.fs->Rename(from_parent.fh, from_leaf, to_parent.fh, to_leaf, user.creds),
      from);
}

util::Status Vfs::HardLink(const UserContext& user, const std::string& existing_path,
                           const std::string& new_path) {
  obs::ScopedSpan op_span(spans_, "vfs.hardlink", "vfs", new_path);
  clock_->Advance(costs_->syscall_ns, obs::TimeCategory::kSyscall);
  int depth = 0;
  ASSIGN_OR_RETURN(Vnode target, Resolve(user, existing_path, true, &depth));
  std::string leaf;
  ASSIGN_OR_RETURN(Vnode parent, ResolveParent(user, new_path, &leaf, &depth));
  if (target.fs != parent.fs) {
    return util::InvalidArgument("hard link across file systems");
  }
  return NfsError(parent.fs->Link(target.fh, parent.fh, leaf, user.creds), new_path);
}

util::Result<nfs::Fattr> Vfs::Stat(const UserContext& user, const std::string& path) {
  obs::ScopedSpan op_span(spans_, "vfs.stat", "vfs", path);
  clock_->Advance(costs_->syscall_ns, obs::TimeCategory::kSyscall);
  int depth = 0;
  ASSIGN_OR_RETURN(Vnode vnode, Resolve(user, path, true, &depth));
  if (vnode.kind == Vnode::Kind::kSfsDir) {
    return SyntheticDirAttr(/*fileid=*/2);
  }
  nfs::Fattr attr;
  nfs::Stat s = vnode.fs->GetAttr(vnode.fh, &attr);
  if (s != nfs::Stat::kOk) {
    return NfsError(s, path);
  }
  return attr;
}

util::Result<nfs::Fattr> Vfs::Lstat(const UserContext& user, const std::string& path) {
  obs::ScopedSpan op_span(spans_, "vfs.lstat", "vfs", path);
  clock_->Advance(costs_->syscall_ns, obs::TimeCategory::kSyscall);
  int depth = 0;
  ASSIGN_OR_RETURN(Vnode vnode, Resolve(user, path, false, &depth));
  if (vnode.kind == Vnode::Kind::kSfsDir) {
    return SyntheticDirAttr(/*fileid=*/2);
  }
  nfs::Fattr attr;
  nfs::Stat s = vnode.fs->GetAttr(vnode.fh, &attr);
  if (s != nfs::Stat::kOk) {
    return NfsError(s, path);
  }
  return attr;
}

util::Result<std::string> Vfs::ReadLink(const UserContext& user, const std::string& path) {
  obs::ScopedSpan op_span(spans_, "vfs.readlink", "vfs", path);
  clock_->Advance(costs_->syscall_ns, obs::TimeCategory::kSyscall);
  int depth = 0;
  ASSIGN_OR_RETURN(Vnode vnode, Resolve(user, path, false, &depth));
  std::string target;
  nfs::Stat s = vnode.fs->ReadLink(vnode.fh, user.creds, &target);
  if (s != nfs::Stat::kOk) {
    return NfsError(s, path);
  }
  return target;
}

util::Status Vfs::Chmod(const UserContext& user, const std::string& path, uint32_t mode) {
  obs::ScopedSpan op_span(spans_, "vfs.chmod", "vfs", path);
  clock_->Advance(costs_->syscall_ns, obs::TimeCategory::kSyscall);
  int depth = 0;
  ASSIGN_OR_RETURN(Vnode vnode, Resolve(user, path, true, &depth));
  nfs::Sattr sattr;
  sattr.mode = mode;
  nfs::Fattr attr;
  return NfsError(vnode.fs->SetAttr(vnode.fh, user.creds, sattr, &attr), path);
}

util::Status Vfs::Truncate(const UserContext& user, const std::string& path, uint64_t size) {
  obs::ScopedSpan op_span(spans_, "vfs.truncate", "vfs", path);
  clock_->Advance(costs_->syscall_ns, obs::TimeCategory::kSyscall);
  int depth = 0;
  ASSIGN_OR_RETURN(Vnode vnode, Resolve(user, path, true, &depth));
  nfs::Sattr sattr;
  sattr.size = size;
  nfs::Fattr attr;
  return NfsError(vnode.fs->SetAttr(vnode.fh, user.creds, sattr, &attr), path);
}

util::Result<std::vector<std::string>> Vfs::ListDir(const UserContext& user,
                                                    const std::string& path) {
  obs::ScopedSpan op_span(spans_, "vfs.listdir", "vfs", path);
  clock_->Advance(costs_->syscall_ns, obs::TimeCategory::kSyscall);
  int depth = 0;
  ASSIGN_OR_RETURN(Vnode vnode, Resolve(user, path, true, &depth));

  std::vector<std::string> names;
  if (vnode.kind == Vnode::Kind::kSfsDir) {
    // Per-agent view: only names this agent has touched, plus its own
    // dynamic links (§2.3).
    if (user.agent != nullptr) {
      auto it = sfs_accessed_.find(user.agent);
      if (it != sfs_accessed_.end()) {
        names.assign(it->second.begin(), it->second.end());
      }
    }
    return names;
  }

  uint64_t cookie = 0;
  bool eof = false;
  while (!eof) {
    std::vector<nfs::DirEntry> entries;
    nfs::Stat s = vnode.fs->ReadDir(vnode.fh, user.creds, cookie, 64, &entries, &eof);
    if (s != nfs::Stat::kOk) {
      return NfsError(s, path);
    }
    if (entries.empty() && !eof) {
      break;
    }
    for (nfs::DirEntry& e : entries) {
      cookie = e.cookie;
      names.push_back(std::move(e.name));
    }
  }
  if (vnode.kind == Vnode::Kind::kRoot && sfs_client_ != nullptr) {
    names.push_back("sfs");
  }
  return names;
}

util::Result<std::string> Vfs::Realpath(const UserContext& user, const std::string& path) {
  obs::ScopedSpan op_span(spans_, "vfs.realpath", "vfs", path);
  clock_->Advance(costs_->syscall_ns, obs::TimeCategory::kSyscall);
  int depth = 0;
  ASSIGN_OR_RETURN(Vnode vnode, Resolve(user, path, true, &depth));
  return vnode.canonical.empty() ? std::string("/") : vnode.canonical;
}

util::Result<Vfs::FsUsage> Vfs::StatFs(const UserContext& user, const std::string& path) {
  obs::ScopedSpan op_span(spans_, "vfs.statfs", "vfs", path);
  clock_->Advance(costs_->syscall_ns, obs::TimeCategory::kSyscall);
  int depth = 0;
  ASSIGN_OR_RETURN(Vnode vnode, Resolve(user, path, true, &depth));
  if (vnode.kind == Vnode::Kind::kSfsDir) {
    return util::InvalidArgument("/sfs is not a file system");
  }
  FsUsage usage;
  nfs::Stat s = vnode.fs->FsStat(vnode.fh, &usage.total_bytes, &usage.used_bytes);
  if (s != nfs::Stat::kOk) {
    return NfsError(s, path);
  }
  return usage;
}

// --- OpenFile ---------------------------------------------------------------

util::Status OpenFile::FlushWrites() {
  if (wb_buf_.empty()) {
    return util::OkStatus();
  }
  nfs::Fattr attr;
  nfs::Stat s = fs_->Write(fh_, creds_, wb_offset_, wb_buf_, /*stable=*/false, &attr);
  wb_buf_.clear();
  if (s != nfs::Stat::kOk) {
    return NfsError(s, "write");
  }
  dirty_ = true;
  return util::OkStatus();
}

util::Result<util::Bytes> OpenFile::Pread(uint64_t offset, uint32_t count) {
  if (!open_) {
    return util::FailedPrecondition("file is closed");
  }
  obs::ScopedSpan op_span(vfs_->spans_, "vfs.pread", "vfs");
  vfs_->clock_->Advance(vfs_->costs_->syscall_ns, obs::TimeCategory::kSyscall);
  // Reads must observe buffered writes: flush any overlap first.
  if (!wb_buf_.empty() && offset < wb_offset_ + wb_buf_.size() &&
      offset + count > wb_offset_) {
    RETURN_IF_ERROR(FlushWrites());
  }

  // Serve from the read-ahead window when fully contained.
  if (offset >= ra_offset_ && offset + count <= ra_offset_ + ra_buf_.size()) {
    last_read_end_ = offset + count;
    return util::Bytes(ra_buf_.begin() + static_cast<long>(offset - ra_offset_),
                       ra_buf_.begin() + static_cast<long>(offset - ra_offset_ + count));
  }

  // Sequential access triggers read-ahead.
  bool sequential = offset == last_read_end_ || offset == 0;
  uint32_t fetch = sequential ? std::max(count, kReadAheadBytes) : count;
  util::Bytes data;
  bool eof = false;
  nfs::Stat s = fs_->Read(fh_, creds_, offset, fetch, &data, &eof);
  if (s != nfs::Stat::kOk) {
    return NfsError(s, "read");
  }
  last_read_end_ = offset + std::min<uint64_t>(count, data.size());
  if (data.size() > count) {
    ra_offset_ = offset;
    ra_buf_ = data;
    data.resize(count);
  }
  return data;
}

util::Status OpenFile::Pwrite(uint64_t offset, const util::Bytes& data) {
  if (!open_) {
    return util::FailedPrecondition("file is closed");
  }
  if (!writable_) {
    return util::PermissionDenied("file not open for writing");
  }
  obs::ScopedSpan op_span(vfs_->spans_, "vfs.pwrite", "vfs");
  vfs_->clock_->Advance(vfs_->costs_->syscall_ns, obs::TimeCategory::kSyscall);
  ra_buf_.clear();  // Written data invalidates the read-ahead window.

  // Gather contiguous writes into larger WRITE RPCs.
  if (wb_buf_.empty()) {
    wb_offset_ = offset;
    wb_buf_ = data;
  } else if (offset == wb_offset_ + wb_buf_.size()) {
    util::Append(&wb_buf_, data);
  } else {
    RETURN_IF_ERROR(FlushWrites());
    wb_offset_ = offset;
    wb_buf_ = data;
  }
  if (wb_buf_.size() >= kReadAheadBytes) {
    return FlushWrites();
  }
  return util::OkStatus();
}

util::Result<util::Bytes> OpenFile::Read(uint32_t count) {
  ASSIGN_OR_RETURN(util::Bytes data, Pread(position_, count));
  position_ += data.size();
  return data;
}

util::Status OpenFile::Write(const util::Bytes& data) {
  RETURN_IF_ERROR(Pwrite(position_, data));
  position_ += data.size();
  return util::OkStatus();
}

util::Result<nfs::Fattr> OpenFile::Stat() {
  if (!open_) {
    return util::FailedPrecondition("file is closed");
  }
  obs::ScopedSpan op_span(vfs_->spans_, "vfs.fstat", "vfs");
  vfs_->clock_->Advance(vfs_->costs_->syscall_ns, obs::TimeCategory::kSyscall);
  RETURN_IF_ERROR(FlushWrites());
  nfs::Fattr attr;
  nfs::Stat s = fs_->GetAttr(fh_, &attr);
  if (s != nfs::Stat::kOk) {
    return NfsError(s, "fstat");
  }
  return attr;
}

util::Status OpenFile::SetAttr(const nfs::Sattr& sattr) {
  if (!open_) {
    return util::FailedPrecondition("file is closed");
  }
  obs::ScopedSpan op_span(vfs_->spans_, "vfs.fsetattr", "vfs");
  vfs_->clock_->Advance(vfs_->costs_->syscall_ns, obs::TimeCategory::kSyscall);
  RETURN_IF_ERROR(FlushWrites());
  nfs::Fattr attr;
  return NfsError(fs_->SetAttr(fh_, creds_, sattr, &attr), "fsetattr");
}

util::Status OpenFile::Close() {
  if (!open_) {
    return util::OkStatus();
  }
  open_ = false;
  obs::ScopedSpan op_span(vfs_->spans_, "vfs.close", "vfs");
  vfs_->clock_->Advance(vfs_->costs_->syscall_ns, obs::TimeCategory::kSyscall);
  RETURN_IF_ERROR(FlushWrites());
  if (dirty_) {
    // Flush buffered writes to stable storage on close, NFS3-style.
    // (The default Close is exactly Commit; a write-behind cache also
    // drains its dirty extents and replays on a verifier change.)
    return NfsError(fs_->Close(fh_, creds_), "close/commit");
  }
  return util::OkStatus();
}

}  // namespace vfs
