// In-memory NFS3-semantics file server with a disk-cost model.
//
// This is the substrate under both the plain-NFS baseline and the SFS
// server (which, per the paper §3, "acts as an NFS client, passing the
// request to an NFS server on the same machine").  Files are stored
// sparsely in 8 KB chunks, so the paper's 1,000 MB sparse-file throughput
// benchmark (§4.2) costs no memory; a per-block cold/cached state feeds
// the sim::Disk model so cold reads pay seek+transfer and re-reads are
// served from the buffer cache.
#ifndef SFS_SRC_NFS_MEMFS_H_
#define SFS_SRC_NFS_MEMFS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/nfs/api.h"
#include "src/nfs/types.h"
#include "src/sim/clock.h"
#include "src/sim/disk.h"
#include "src/util/bytes.h"

namespace nfs {

inline constexpr uint64_t kBlockSize = 8192;

class MemFs : public FileSystemApi {
 public:
  struct Options {
    uint64_t fsid = 1;
    uint64_t handle_secret = 0x5f5fa1b2c3d4e5f6;  // Per-fs handle secret.
    bool read_only = false;
  };

  MemFs(sim::Clock* clock, sim::Disk* disk, Options options);

  FileHandle root_handle() const;

  // --- NFS3 procedures (all return Stat; out-params on kOk) ---
  Stat GetAttr(const FileHandle& fh, Fattr* attr) override;
  Stat SetAttr(const FileHandle& fh, const Credentials& cred, const Sattr& sattr, Fattr* attr) override;
  Stat Lookup(const FileHandle& dir, const std::string& name, const Credentials& cred,
              FileHandle* out, Fattr* attr) override;
  Stat Access(const FileHandle& fh, const Credentials& cred, uint32_t want, uint32_t* allowed) override;
  Stat ReadLink(const FileHandle& fh, const Credentials& cred, std::string* target) override;
  Stat Read(const FileHandle& fh, const Credentials& cred, uint64_t offset, uint32_t count,
            util::Bytes* data, bool* eof) override;
  Stat Write(const FileHandle& fh, const Credentials& cred, uint64_t offset,
             const util::Bytes& data, bool stable, Fattr* attr) override;
  Stat Create(const FileHandle& dir, const std::string& name, const Credentials& cred,
              const Sattr& sattr, FileHandle* out, Fattr* attr) override;
  Stat Mkdir(const FileHandle& dir, const std::string& name, const Credentials& cred,
             uint32_t mode, FileHandle* out, Fattr* attr) override;
  Stat Symlink(const FileHandle& dir, const std::string& name, const std::string& target,
               const Credentials& cred, FileHandle* out, Fattr* attr) override;
  Stat Remove(const FileHandle& dir, const std::string& name, const Credentials& cred) override;
  Stat Rmdir(const FileHandle& dir, const std::string& name, const Credentials& cred) override;
  Stat Rename(const FileHandle& from_dir, const std::string& from_name,
              const FileHandle& to_dir, const std::string& to_name, const Credentials& cred) override;
  Stat Link(const FileHandle& target, const FileHandle& dir, const std::string& name,
            const Credentials& cred) override;
  Stat ReadDir(const FileHandle& dir, const Credentials& cred, uint64_t cookie,
               uint32_t max_entries, std::vector<DirEntry>* entries, bool* eof) override;
  Stat FsStat(const FileHandle& fh, uint64_t* total_bytes, uint64_t* used_bytes) override;
  Stat Commit(const FileHandle& fh) override;

  // --- Setup helpers (not part of the protocol) ---
  // Creates a file whose blocks are "on disk, not in the buffer cache":
  // first reads charge the disk model.  Parent directories are not
  // created; use the directory ops for those.
  Stat AddColdFile(const FileHandle& dir, const std::string& name, const util::Bytes& content,
                   uint32_t mode = 0644, uint32_t uid = 0);
  // Marks every cached block of every file cold again (benchmark phase
  // separation, "unmount/remount" analog).
  void DropCaches();
  // Generation bump: invalidates all outstanding handles for a file
  // (used by tests exercising NFS3ERR_STALE).
  void InvalidateHandles(const FileHandle& fh);

  // Simulates a server crash + reboot.  Byte ranges written UNSTABLE and
  // never committed are zeroed (the honest data loss a client that fails
  // to replay would read back), every cached block goes cold, pending
  // disk state is discarded, and the write verifier changes so clients
  // detect the new boot instance at their next WRITE/COMMIT.
  void SimulateRestart();

  uint64_t WriteVerf() const override { return write_verf_; }
  uint64_t restarts() const { return restarts_; }
  // Bytes currently held only in volatile storage (unstable, uncommitted).
  uint64_t unstable_bytes() const;

  uint64_t fsid() const { return options_.fsid; }

  // Change counter bumped on every mutation; cheap cache-coherence probe
  // for the SFS server's lease callbacks.
  uint64_t change_counter() const { return change_counter_; }

  // Successful non-idempotent mutations, for at-most-once verification:
  // a retransmitted CREATE or REMOVE that re-executed would double these
  // (fault-injection tests compare them against client-side op counts).
  uint64_t creates_applied() const { return creates_applied_; }
  uint64_t removes_applied() const { return removes_applied_; }
  // WRITE/COMMIT executions (DRC-answered retransmits never reach the
  // fs, so a lossy run proves exactly-once by comparing these against
  // the client's issue counts).
  uint64_t writes_applied() const { return writes_applied_; }
  uint64_t commits_applied() const { return commits_applied_; }

 private:
  struct Inode {
    uint64_t id = 0;
    FileType type = FileType::kRegular;
    uint32_t mode = 0644;
    uint32_t uid = 0;
    uint32_t gid = 0;
    uint32_t nlink = 1;
    uint64_t generation = 1;
    uint64_t size = 0;
    uint64_t atime_ns = 0;
    uint64_t mtime_ns = 0;
    uint64_t ctime_ns = 0;

    // Regular files: sparse chunk store + cold (on-disk) block set.
    std::map<uint64_t, util::Bytes> chunks;  // block index -> kBlockSize bytes
    std::set<uint64_t> cold_blocks;

    // Byte ranges written UNSTABLE and not yet committed, coalesced:
    // start -> end (exclusive).  Cleared by COMMIT or a stable write;
    // zeroed (lost) by SimulateRestart.
    std::map<uint64_t, uint64_t> unstable_extents;

    // Directories: name -> inode id, sorted for stable readdir cookies.
    std::map<std::string, uint64_t> children;

    // Symlinks.
    std::string symlink_target;
  };

  Inode* FindInode(uint64_t id);
  Inode* DecodeHandle(const FileHandle& fh);
  FileHandle EncodeHandle(const Inode& inode) const;
  Inode* CreateInode(FileType type, uint32_t mode, const Credentials& cred);
  bool CheckAccess(const Inode& inode, const Credentials& cred, uint32_t want) const;
  void Touch(Inode* inode, bool data_changed);
  Stat RemoveCommon(const FileHandle& dir, const std::string& name, const Credentials& cred,
                    bool want_dir);
  static bool NameOk(const std::string& name);

  sim::Clock* clock_;
  sim::Disk* disk_;
  Options options_;
  std::map<uint64_t, Inode> inodes_;
  uint64_t next_id_ = 1;
  uint64_t root_id_ = 0;
  uint64_t change_counter_ = 0;
  uint64_t creates_applied_ = 0;
  uint64_t removes_applied_ = 0;
  uint64_t writes_applied_ = 0;
  uint64_t commits_applied_ = 0;
  // Boot-instance cookie; deterministic seed, ratcheted per restart.
  uint64_t write_verf_ = 0x7665726631u;  // "verf1"
  uint64_t restarts_ = 0;
};

}  // namespace nfs

#endif  // SFS_SRC_NFS_MEMFS_H_
