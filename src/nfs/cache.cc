#include "src/nfs/cache.h"

#include <algorithm>

namespace nfs {

uint64_t CachingFs::ExpiryFor(const Fattr& attr) const {
  if (options_.use_leases) {
    // Lease granted by the server; zero means "no lease", fall back to
    // the plain timeout so a lease-less server still caches a little.
    uint64_t lease = attr.lease_ns != 0 ? attr.lease_ns : options_.attr_timeout_ns;
    return clock_->now_ns() + lease;
  }
  return clock_->now_ns() + options_.attr_timeout_ns;
}

void CachingFs::StoreAttr(const FileHandle& fh, const Fattr& attr) {
  AttrEntry& e = attr_cache_[Key(fh)];
  // A data-version change invalidates the cached file contents.
  auto data = data_cache_.find(Key(fh));
  if (data != data_cache_.end() && data->second.mtime_ns != attr.mtime_ns) {
    ForgetData(Key(fh));
  }
  e.attr = attr;
  e.expiry_ns = ExpiryFor(attr);
}

void CachingFs::ForgetData(const std::string& key) {
  auto it = data_cache_.find(key);
  if (it != data_cache_.end()) {
    data_cache_bytes_ -= it->second.content.size();
    data_cache_.erase(it);
  }
}

void CachingFs::EvictDataIfNeeded() {
  if (data_cache_bytes_ <= options_.data_cache_total_limit) {
    return;
  }
  // Coarse eviction: drop everything (the benchmarks' working sets either
  // fit or thrash; finer LRU would not change the reported shapes).
  data_cache_.clear();
  data_cache_bytes_ = 0;
}

Stat CachingFs::GetAttr(const FileHandle& fh, Fattr* attr) {
  obs::ScopedSpan op_span(spans_, "cache.GetAttr", "nfs.cache");
  auto it = attr_cache_.find(Key(fh));
  if (it != attr_cache_.end() && it->second.expiry_ns > clock_->now_ns()) {
    ++attr_hits_;
    *attr = it->second.attr;
    if (obs::Span* s = op_span.span()) {
      s->detail = "hit";
    }
    return Stat::kOk;
  }
  ++attr_misses_;
  Stat s = backend_->GetAttr(fh, attr);
  if (s == Stat::kOk) {
    StoreAttr(fh, *attr);
  } else if (s == Stat::kStale) {
    InvalidateHandle(fh);
  }
  return s;
}

Stat CachingFs::SetAttr(const FileHandle& fh, const Credentials& cred, const Sattr& sattr,
                        Fattr* attr) {
  obs::ScopedSpan op_span(spans_, "cache.SetAttr", "nfs.cache");
  Stat s = backend_->SetAttr(fh, cred, sattr, attr);
  if (s == Stat::kOk) {
    if (sattr.size.has_value()) {
      ForgetData(Key(fh));
    }
    StoreAttr(fh, *attr);
    access_cache_.clear();  // Mode changes can alter access decisions.
  }
  return s;
}

Stat CachingFs::Lookup(const FileHandle& dir, const std::string& name, const Credentials& cred,
                       FileHandle* out, Fattr* attr) {
  obs::ScopedSpan op_span(spans_, "cache.Lookup", "nfs.cache");
  auto key = std::make_pair(Key(dir), name);
  auto it = name_cache_.find(key);
  if (it != name_cache_.end() && it->second.expiry_ns > clock_->now_ns()) {
    // Serve the handle from the name cache if we also have fresh
    // attributes for it.
    auto attr_it = attr_cache_.find(Key(it->second.fh));
    if (attr_it != attr_cache_.end() && attr_it->second.expiry_ns > clock_->now_ns()) {
      ++attr_hits_;
      *out = it->second.fh;
      *attr = attr_it->second.attr;
      if (obs::Span* s = op_span.span()) {
        s->detail = "hit";
      }
      return Stat::kOk;
    }
  }
  Stat s = backend_->Lookup(dir, name, cred, out, attr);
  if (s == Stat::kOk) {
    StoreAttr(*out, *attr);
    name_cache_[key] = NameEntry{*out, ExpiryFor(*attr)};
  } else if (s == Stat::kNoEnt) {
    name_cache_.erase(key);
  }
  return s;
}

Stat CachingFs::Access(const FileHandle& fh, const Credentials& cred, uint32_t want,
                       uint32_t* allowed) {
  obs::ScopedSpan op_span(spans_, "cache.Access", "nfs.cache");
  auto key = std::make_pair(Key(fh), cred.uid);
  auto it = access_cache_.find(key);
  if (it != access_cache_.end() && it->second.expiry_ns > clock_->now_ns() &&
      (it->second.want & want) == want) {
    ++access_hits_;
    *allowed = it->second.allowed & want;
    if (obs::Span* s = op_span.span()) {
      s->detail = "hit";
    }
    return Stat::kOk;
  }
  Stat s = backend_->Access(fh, cred, want, allowed);
  if (s == Stat::kOk) {
    uint64_t expiry;
    {
      auto attr_it = attr_cache_.find(Key(fh));
      Fattr attr = attr_it != attr_cache_.end() ? attr_it->second.attr : Fattr{};
      expiry = ExpiryFor(attr);
    }
    access_cache_[key] = AccessEntry{want, *allowed, expiry};
  }
  return s;
}

Stat CachingFs::ReadLink(const FileHandle& fh, const Credentials& cred, std::string* target) {
  obs::ScopedSpan op_span(spans_, "cache.ReadLink", "nfs.cache");
  return backend_->ReadLink(fh, cred, target);
}

namespace {

// The kernel's mode-bit check against cached attributes: a data-cache hit
// must not leak bytes to a user the inode's permissions exclude.  (Local
// root passes, as on any Unix client — SFS's threat model assumes users
// trust their own client machine.)
bool CachedAttrAllowsRead(const Fattr& attr, const Credentials& cred) {
  if (cred.IsSuperuser()) {
    return true;
  }
  uint32_t shift = cred.uid == attr.uid ? 6 : (cred.HasGid(attr.gid) ? 3 : 0);
  return ((attr.mode >> shift) & 4) != 0;
}

}  // namespace

Stat CachingFs::Read(const FileHandle& fh, const Credentials& cred, uint64_t offset,
                     uint32_t count, util::Bytes* data, bool* eof) {
  obs::ScopedSpan op_span(spans_, "cache.Read", "nfs.cache");
  std::string key = Key(fh);
  if (options_.enable_data_cache) {
    // A data-cache hit requires fresh attributes to validate mtime, and
    // the caller must pass the cached mode bits (otherwise fall through:
    // the server decides authoritatively).
    auto attr_it = attr_cache_.find(key);
    auto data_it = data_cache_.find(key);
    if (attr_it != attr_cache_.end() && attr_it->second.expiry_ns > clock_->now_ns() &&
        CachedAttrAllowsRead(attr_it->second.attr, cred) &&
        data_it != data_cache_.end() &&
        data_it->second.mtime_ns == attr_it->second.attr.mtime_ns) {
      const util::Bytes& content = data_it->second.content;
      uint64_t file_size = attr_it->second.attr.size;
      if (offset >= file_size) {
        ++data_hits_;
        data->clear();
        *eof = true;
        if (obs::Span* s = op_span.span()) {
          s->detail = "hit";
        }
        return Stat::kOk;
      }
      uint64_t end = std::min<uint64_t>(offset + count, file_size);
      if (end <= content.size()) {
        ++data_hits_;
        data->assign(content.begin() + static_cast<long>(offset),
                     content.begin() + static_cast<long>(end));
        *eof = end >= file_size;
        if (obs::Span* s = op_span.span()) {
          s->detail = "hit";
        }
        return Stat::kOk;
      }
    }
  }

  Stat s = backend_->Read(fh, cred, offset, count, data, eof);
  if (s != Stat::kOk) {
    return s;
  }
  if (options_.enable_data_cache) {
    auto attr_it = attr_cache_.find(key);
    if (attr_it != attr_cache_.end()) {
      DataEntry& entry = data_cache_[key];
      if (entry.mtime_ns != attr_it->second.attr.mtime_ns) {
        // The file changed under the cached prefix: the stale bytes can
        // never be served again, so drop them and restart the fill —
        // otherwise the mismatch permanently disables caching this file.
        data_cache_bytes_ -= entry.content.size();
        entry.content.clear();
        entry.mtime_ns = attr_it->second.attr.mtime_ns;
      }
      // Sequential fill only, and only for files under the size limit.
      if (offset == entry.content.size() &&
          entry.content.size() + data->size() <= options_.data_cache_file_limit) {
        util::Append(&entry.content, *data);
        data_cache_bytes_ += data->size();
        EvictDataIfNeeded();
      }
    }
    if (!*eof) {
      // Issued last: completions can run while the async call is being
      // submitted (a full send window pumps the channel), and they may
      // mutate the caches this function was holding iterators into.
      MaybeReadAhead(fh, cred, count);
    }
  }
  return s;
}

void CachingFs::MaybeReadAhead(const FileHandle& fh, const Credentials& cred,
                               uint32_t count) {
  if (async_ops_ == nullptr || options_.read_ahead_chunks == 0 || count == 0 ||
      !options_.enable_data_cache) {
    return;
  }
  const std::string key = Key(fh);
  for (uint32_t i = 0; i < options_.read_ahead_chunks; ++i) {
    // Re-find per chunk: issuing a read can pump the channel and run
    // completions that restructure both caches.
    auto attr_it = attr_cache_.find(key);
    auto data_it = data_cache_.find(key);
    if (attr_it == attr_cache_.end() || data_it == data_cache_.end()) {
      return;
    }
    // Skip past chunks already in flight for this file; their replies
    // complete in issue order and each appends exactly at its offset.
    uint64_t next_offset = data_it->second.content.size();
    while (read_ahead_inflight_.count({key, next_offset}) != 0) {
      next_offset += count;
    }
    if (next_offset >= attr_it->second.attr.size ||
        next_offset + count > options_.data_cache_file_limit) {
      return;
    }
    const uint64_t expected_mtime = data_it->second.mtime_ns;
    read_ahead_inflight_.insert({key, next_offset});
    ++read_aheads_issued_;
    async_ops_->ReadAsync(
        fh, cred, next_offset, count,
        [this, key, next_offset, expected_mtime](Stat s, util::Bytes data, bool eof) {
          (void)eof;
          read_ahead_inflight_.erase({key, next_offset});
          if (s != Stat::kOk || data.empty()) {
            return;
          }
          auto it = data_cache_.find(key);
          if (it == data_cache_.end()) {
            return;
          }
          DataEntry& entry = it->second;
          // The prefix must not have moved under us: same validator,
          // and the chunk still lands exactly at the sequential edge.
          if (entry.mtime_ns != expected_mtime ||
              entry.content.size() != next_offset ||
              entry.content.size() + data.size() > options_.data_cache_file_limit) {
            return;
          }
          util::Append(&entry.content, data);
          data_cache_bytes_ += data.size();
          ++read_ahead_fills_;
          EvictDataIfNeeded();
        });
  }
}

void CachingFs::PrefetchLookups(const FileHandle& dir, const std::vector<std::string>& names,
                                const Credentials& cred) {
  if (async_ops_ == nullptr) {
    return;
  }
  for (const std::string& name : names) {
    auto key = std::make_pair(Key(dir), name);
    auto it = name_cache_.find(key);
    if (it != name_cache_.end() && it->second.expiry_ns > clock_->now_ns()) {
      continue;
    }
    ++prefetches_issued_;
    async_ops_->LookupAsync(dir, name, cred,
                            [this, key](Stat s, FileHandle fh, Fattr attr) {
                              if (s == Stat::kOk) {
                                StoreAttr(fh, attr);
                                name_cache_[key] = NameEntry{fh, ExpiryFor(attr)};
                              } else if (s == Stat::kNoEnt) {
                                name_cache_.erase(key);
                              }
                            });
  }
}

void CachingFs::PrefetchAttrs(const std::vector<FileHandle>& handles) {
  if (async_ops_ == nullptr) {
    return;
  }
  for (const FileHandle& fh : handles) {
    auto it = attr_cache_.find(Key(fh));
    if (it != attr_cache_.end() && it->second.expiry_ns > clock_->now_ns()) {
      continue;
    }
    ++prefetches_issued_;
    FileHandle copy = fh;
    async_ops_->GetAttrAsync(fh, [this, copy](Stat s, Fattr attr) {
      if (s == Stat::kOk) {
        StoreAttr(copy, attr);
      }
    });
  }
}

Stat CachingFs::Write(const FileHandle& fh, const Credentials& cred, uint64_t offset,
                      const util::Bytes& data, bool stable, Fattr* attr) {
  obs::ScopedSpan op_span(spans_, "cache.Write", "nfs.cache");
  Stat s = backend_->Write(fh, cred, offset, data, stable, attr);
  if (s != Stat::kOk) {
    return s;
  }
  std::string key = Key(fh);
  // Fold the write into the cached prefix when it extends or overlaps it;
  // otherwise drop the cached data.
  auto it = data_cache_.find(key);
  if (it != data_cache_.end()) {
    DataEntry& entry = it->second;
    if (offset <= entry.content.size() &&
        offset + data.size() <= options_.data_cache_file_limit) {
      size_t new_size = std::max<size_t>(entry.content.size(), offset + data.size());
      data_cache_bytes_ += new_size - entry.content.size();
      entry.content.resize(new_size);
      std::copy(data.begin(), data.end(), entry.content.begin() + static_cast<long>(offset));
      entry.mtime_ns = attr->mtime_ns;
      EvictDataIfNeeded();
    } else {
      ForgetData(key);
    }
  } else if (options_.enable_data_cache && offset == 0 &&
             data.size() <= options_.data_cache_file_limit) {
    data_cache_[key] = DataEntry{attr->mtime_ns, data};
    data_cache_bytes_ += data.size();
    EvictDataIfNeeded();
  }
  StoreAttr(fh, *attr);
  return s;
}

Stat CachingFs::Create(const FileHandle& dir, const std::string& name, const Credentials& cred,
                       const Sattr& sattr, FileHandle* out, Fattr* attr) {
  obs::ScopedSpan op_span(spans_, "cache.Create", "nfs.cache");
  Stat s = backend_->Create(dir, name, cred, sattr, out, attr);
  if (s == Stat::kOk) {
    StoreAttr(*out, *attr);
    name_cache_[{Key(dir), name}] = NameEntry{*out, ExpiryFor(*attr)};
    ForgetParentAttrs(dir);
  }
  return s;
}

Stat CachingFs::Mkdir(const FileHandle& dir, const std::string& name, const Credentials& cred,
                      uint32_t mode, FileHandle* out, Fattr* attr) {
  obs::ScopedSpan op_span(spans_, "cache.Mkdir", "nfs.cache");
  Stat s = backend_->Mkdir(dir, name, cred, mode, out, attr);
  if (s == Stat::kOk) {
    StoreAttr(*out, *attr);
    name_cache_[{Key(dir), name}] = NameEntry{*out, ExpiryFor(*attr)};
    ForgetParentAttrs(dir);
  }
  return s;
}

Stat CachingFs::Symlink(const FileHandle& dir, const std::string& name,
                        const std::string& target, const Credentials& cred, FileHandle* out,
                        Fattr* attr) {
  obs::ScopedSpan op_span(spans_, "cache.Symlink", "nfs.cache");
  Stat s = backend_->Symlink(dir, name, target, cred, out, attr);
  if (s == Stat::kOk) {
    StoreAttr(*out, *attr);
    name_cache_[{Key(dir), name}] = NameEntry{*out, ExpiryFor(*attr)};
    ForgetParentAttrs(dir);
  }
  return s;
}

Stat CachingFs::Remove(const FileHandle& dir, const std::string& name,
                       const Credentials& cred) {
  obs::ScopedSpan op_span(spans_, "cache.Remove", "nfs.cache");
  Stat s = backend_->Remove(dir, name, cred);
  if (s == Stat::kOk) {
    auto it = name_cache_.find({Key(dir), name});
    if (it != name_cache_.end()) {
      InvalidateHandle(it->second.fh);
      name_cache_.erase(it);
    }
    ForgetParentAttrs(dir);
  }
  return s;
}

Stat CachingFs::Rmdir(const FileHandle& dir, const std::string& name, const Credentials& cred) {
  obs::ScopedSpan op_span(spans_, "cache.Rmdir", "nfs.cache");
  Stat s = backend_->Rmdir(dir, name, cred);
  if (s == Stat::kOk) {
    name_cache_.erase({Key(dir), name});
    ForgetParentAttrs(dir);
  }
  return s;
}

Stat CachingFs::Rename(const FileHandle& from_dir, const std::string& from_name,
                       const FileHandle& to_dir, const std::string& to_name,
                       const Credentials& cred) {
  obs::ScopedSpan op_span(spans_, "cache.Rename", "nfs.cache");
  Stat s = backend_->Rename(from_dir, from_name, to_dir, to_name, cred);
  if (s == Stat::kOk) {
    name_cache_.erase({Key(from_dir), from_name});
    name_cache_.erase({Key(to_dir), to_name});
    ForgetParentAttrs(from_dir);
    ForgetParentAttrs(to_dir);
  }
  return s;
}

Stat CachingFs::Link(const FileHandle& target, const FileHandle& dir,
                     const std::string& name, const Credentials& cred) {
  obs::ScopedSpan op_span(spans_, "cache.Link", "nfs.cache");
  Stat s = backend_->Link(target, dir, name, cred);
  if (s == Stat::kOk) {
    attr_cache_.erase(Key(target));  // nlink/ctime changed.
    name_cache_[{Key(dir), name}] = NameEntry{target, clock_->now_ns()};  // Expired entry.
    ForgetParentAttrs(dir);
  }
  return s;
}

Stat CachingFs::ReadDir(const FileHandle& dir, const Credentials& cred, uint64_t cookie,
                        uint32_t max_entries, std::vector<DirEntry>* entries, bool* eof) {
  obs::ScopedSpan op_span(spans_, "cache.ReadDir", "nfs.cache");
  return backend_->ReadDir(dir, cred, cookie, max_entries, entries, eof);
}

Stat CachingFs::FsStat(const FileHandle& fh, uint64_t* total_bytes, uint64_t* used_bytes) {
  obs::ScopedSpan op_span(spans_, "cache.FsStat", "nfs.cache");
  return backend_->FsStat(fh, total_bytes, used_bytes);
}

Stat CachingFs::Commit(const FileHandle& fh) {
  obs::ScopedSpan op_span(spans_, "cache.Commit", "nfs.cache");
  return backend_->Commit(fh);
}

void CachingFs::ForgetParentAttrs(const FileHandle& dir) {
  // Plain NFS3 must re-fetch the parent's attributes after changing it.
  // In lease mode the server's callbacks cover *other* clients' changes,
  // and our own mutation does not invalidate what we know — this is a
  // large part of the "enhanced caching" RPC savings (paper §3.3).
  if (!options_.use_leases) {
    attr_cache_.erase(Key(dir));
  }
}

void CachingFs::InvalidateHandle(const FileHandle& fh) {
  std::string key = Key(fh);
  attr_cache_.erase(key);
  ForgetData(key);
  for (auto it = access_cache_.begin(); it != access_cache_.end();) {
    if (it->first.first == key) {
      it = access_cache_.erase(it);
    } else {
      ++it;
    }
  }
}

void CachingFs::InvalidateAll() {
  attr_cache_.clear();
  name_cache_.clear();
  access_cache_.clear();
  data_cache_.clear();
  data_cache_bytes_ = 0;
}

}  // namespace nfs
