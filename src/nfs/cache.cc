#include "src/nfs/cache.h"

#include <algorithm>

namespace nfs {

uint64_t CachingFs::ExpiryFor(const Fattr& attr) const {
  if (options_.use_leases) {
    // Lease granted by the server; zero means "no lease", fall back to
    // the plain timeout so a lease-less server still caches a little.
    uint64_t lease = attr.lease_ns != 0 ? attr.lease_ns : options_.attr_timeout_ns;
    return clock_->now_ns() + lease;
  }
  return clock_->now_ns() + options_.attr_timeout_ns;
}

void CachingFs::StoreAttr(const FileHandle& fh, const Fattr& attr) {
  AttrEntry& e = attr_cache_[Key(fh)];
  // A data-version change invalidates the cached file contents.
  auto data = data_cache_.find(Key(fh));
  if (data != data_cache_.end() && data->second.mtime_ns != attr.mtime_ns) {
    ForgetData(Key(fh));
  }
  e.attr = attr;
  e.expiry_ns = ExpiryFor(attr);
  e.fetched_ns = clock_->now_ns();
  e.from_server = true;
}

void CachingFs::ForgetData(const std::string& key) {
  auto it = data_cache_.find(key);
  if (it != data_cache_.end()) {
    data_cache_bytes_ -= it->second.content.size();
    data_cache_.erase(it);
  }
}

void CachingFs::EvictDataIfNeeded() {
  if (data_cache_bytes_ <= options_.data_cache_total_limit) {
    return;
  }
  // Coarse eviction: drop everything (the benchmarks' working sets either
  // fit or thrash; finer LRU would not change the reported shapes).
  data_cache_.clear();
  data_cache_bytes_ = 0;
}

Stat CachingFs::GetAttr(const FileHandle& fh, Fattr* attr) {
  obs::ScopedSpan op_span(spans_, "cache.GetAttr", "nfs.cache");
  auto it = attr_cache_.find(Key(fh));
  if (it != attr_cache_.end() && it->second.expiry_ns > clock_->now_ns()) {
    ++attr_hits_;
    *attr = it->second.attr;
    if (obs::Span* s = op_span.span()) {
      s->detail = "hit";
    }
    return Stat::kOk;
  }
  ++attr_misses_;
  if (options_.write_behind) {
    // The server's answer must reflect our buffered bytes (size, mtime).
    Stat fs = FlushForRead(fh);
    if (fs != Stat::kOk) {
      return fs;
    }
  }
  Stat s = backend_->GetAttr(fh, attr);
  if (s == Stat::kOk) {
    StoreAttr(fh, *attr);
  } else if (s == Stat::kStale) {
    InvalidateHandle(fh);
  }
  return s;
}

Stat CachingFs::SetAttr(const FileHandle& fh, const Credentials& cred, const Sattr& sattr,
                        Fattr* attr) {
  obs::ScopedSpan op_span(spans_, "cache.SetAttr", "nfs.cache");
  if (options_.write_behind) {
    // Buffered writes predate this setattr (e.g. a truncate) and must
    // reach the server first or they would resurrect afterwards.
    Stat fs = FlushForRead(fh);
    if (fs != Stat::kOk) {
      return fs;
    }
  }
  Stat s = backend_->SetAttr(fh, cred, sattr, attr);
  if (s == Stat::kOk) {
    if (sattr.size.has_value()) {
      ForgetData(Key(fh));
    }
    StoreAttr(fh, *attr);
    access_cache_.clear();  // Mode changes can alter access decisions.
  }
  return s;
}

Stat CachingFs::Lookup(const FileHandle& dir, const std::string& name, const Credentials& cred,
                       FileHandle* out, Fattr* attr) {
  obs::ScopedSpan op_span(spans_, "cache.Lookup", "nfs.cache");
  auto key = std::make_pair(Key(dir), name);
  auto it = name_cache_.find(key);
  if (it != name_cache_.end() && it->second.expiry_ns > clock_->now_ns()) {
    // Serve the handle from the name cache if we also have fresh
    // attributes for it.
    auto attr_it = attr_cache_.find(Key(it->second.fh));
    if (attr_it != attr_cache_.end() && attr_it->second.expiry_ns > clock_->now_ns()) {
      ++attr_hits_;
      *out = it->second.fh;
      *attr = attr_it->second.attr;
      if (obs::Span* s = op_span.span()) {
        s->detail = "hit";
      }
      return Stat::kOk;
    }
  }
  Stat s = backend_->Lookup(dir, name, cred, out, attr);
  if (s == Stat::kOk) {
    StoreAttr(*out, *attr);
    name_cache_[key] = NameEntry{*out, ExpiryFor(*attr)};
  } else if (s == Stat::kNoEnt) {
    name_cache_.erase(key);
  }
  return s;
}

Stat CachingFs::Access(const FileHandle& fh, const Credentials& cred, uint32_t want,
                       uint32_t* allowed) {
  obs::ScopedSpan op_span(spans_, "cache.Access", "nfs.cache");
  auto key = std::make_pair(Key(fh), cred.uid);
  auto it = access_cache_.find(key);
  if (it != access_cache_.end() && it->second.expiry_ns > clock_->now_ns() &&
      (it->second.want & want) == want) {
    ++access_hits_;
    *allowed = it->second.allowed & want;
    if (obs::Span* s = op_span.span()) {
      s->detail = "hit";
    }
    return Stat::kOk;
  }
  Stat s = backend_->Access(fh, cred, want, allowed);
  if (s == Stat::kOk) {
    uint64_t expiry;
    {
      auto attr_it = attr_cache_.find(Key(fh));
      Fattr attr = attr_it != attr_cache_.end() ? attr_it->second.attr : Fattr{};
      expiry = ExpiryFor(attr);
    }
    access_cache_[key] = AccessEntry{want, *allowed, expiry};
  }
  return s;
}

Stat CachingFs::ReadLink(const FileHandle& fh, const Credentials& cred, std::string* target) {
  obs::ScopedSpan op_span(spans_, "cache.ReadLink", "nfs.cache");
  return backend_->ReadLink(fh, cred, target);
}

namespace {

// The kernel's mode-bit check against cached attributes: a data-cache hit
// must not leak bytes to a user the inode's permissions exclude.  (Local
// root passes, as on any Unix client — SFS's threat model assumes users
// trust their own client machine.)
bool CachedAttrAllowsRead(const Fattr& attr, const Credentials& cred) {
  if (cred.IsSuperuser()) {
    return true;
  }
  uint32_t shift = cred.uid == attr.uid ? 6 : (cred.HasGid(attr.gid) ? 3 : 0);
  return ((attr.mode >> shift) & 4) != 0;
}

}  // namespace

Stat CachingFs::Read(const FileHandle& fh, const Credentials& cred, uint64_t offset,
                     uint32_t count, util::Bytes* data, bool* eof) {
  obs::ScopedSpan op_span(spans_, "cache.Read", "nfs.cache");
  std::string key = Key(fh);
  if (options_.enable_data_cache) {
    // A data-cache hit requires fresh attributes to validate mtime, and
    // the caller must pass the cached mode bits (otherwise fall through:
    // the server decides authoritatively).
    auto attr_it = attr_cache_.find(key);
    auto data_it = data_cache_.find(key);
    if (attr_it != attr_cache_.end() && attr_it->second.expiry_ns > clock_->now_ns() &&
        CachedAttrAllowsRead(attr_it->second.attr, cred) &&
        data_it != data_cache_.end() &&
        data_it->second.mtime_ns == attr_it->second.attr.mtime_ns) {
      const util::Bytes& content = data_it->second.content;
      uint64_t file_size = attr_it->second.attr.size;
      if (offset >= file_size) {
        ++data_hits_;
        data->clear();
        *eof = true;
        if (obs::Span* s = op_span.span()) {
          s->detail = "hit";
        }
        return Stat::kOk;
      }
      uint64_t end = std::min<uint64_t>(offset + count, file_size);
      if (end <= content.size()) {
        ++data_hits_;
        data->assign(content.begin() + static_cast<long>(offset),
                     content.begin() + static_cast<long>(end));
        *eof = end >= file_size;
        if (obs::Span* s = op_span.span()) {
          s->detail = "hit";
        }
        return Stat::kOk;
      }
    }
  }

  if (options_.write_behind) {
    // Cache miss on a file with buffered writes: the server must apply
    // them before it serves the read, or we would fill the cache with
    // pre-write bytes.
    Stat fs = FlushForRead(fh);
    if (fs != Stat::kOk) {
      return fs;
    }
  }
  Stat s = backend_->Read(fh, cred, offset, count, data, eof);
  if (s != Stat::kOk) {
    return s;
  }
  if (options_.enable_data_cache) {
    auto attr_it = attr_cache_.find(key);
    if (attr_it != attr_cache_.end()) {
      DataEntry& entry = data_cache_[key];
      if (entry.mtime_ns != attr_it->second.attr.mtime_ns) {
        // The file changed under the cached prefix: the stale bytes can
        // never be served again, so drop them and restart the fill —
        // otherwise the mismatch permanently disables caching this file.
        data_cache_bytes_ -= entry.content.size();
        entry.content.clear();
        entry.mtime_ns = attr_it->second.attr.mtime_ns;
      }
      // Sequential fill only, and only for files under the size limit.
      if (offset == entry.content.size() &&
          entry.content.size() + data->size() <= options_.data_cache_file_limit) {
        util::Append(&entry.content, *data);
        data_cache_bytes_ += data->size();
        EvictDataIfNeeded();
      }
    }
    if (!*eof) {
      // Issued last: completions can run while the async call is being
      // submitted (a full send window pumps the channel), and they may
      // mutate the caches this function was holding iterators into.
      MaybeReadAhead(fh, cred, count);
    }
  }
  return s;
}

void CachingFs::MaybeReadAhead(const FileHandle& fh, const Credentials& cred,
                               uint32_t count) {
  if (async_ops_ == nullptr || options_.read_ahead_chunks == 0 || count == 0 ||
      !options_.enable_data_cache) {
    return;
  }
  const std::string key = Key(fh);
  for (uint32_t i = 0; i < options_.read_ahead_chunks; ++i) {
    // Re-find per chunk: issuing a read can pump the channel and run
    // completions that restructure both caches.
    auto attr_it = attr_cache_.find(key);
    auto data_it = data_cache_.find(key);
    if (attr_it == attr_cache_.end() || data_it == data_cache_.end()) {
      return;
    }
    // Skip past chunks already in flight for this file; their replies
    // complete in issue order and each appends exactly at its offset.
    uint64_t next_offset = data_it->second.content.size();
    while (read_ahead_inflight_.count({key, next_offset}) != 0) {
      next_offset += count;
    }
    if (next_offset >= attr_it->second.attr.size ||
        next_offset + count > options_.data_cache_file_limit) {
      return;
    }
    const uint64_t expected_mtime = data_it->second.mtime_ns;
    read_ahead_inflight_.insert({key, next_offset});
    ++read_aheads_issued_;
    async_ops_->ReadAsync(
        fh, cred, next_offset, count,
        [this, key, next_offset, expected_mtime](Stat s, util::Bytes data, bool eof) {
          (void)eof;
          read_ahead_inflight_.erase({key, next_offset});
          if (s != Stat::kOk || data.empty()) {
            return;
          }
          auto it = data_cache_.find(key);
          if (it == data_cache_.end()) {
            return;
          }
          DataEntry& entry = it->second;
          // The prefix must not have moved under us: same validator,
          // and the chunk still lands exactly at the sequential edge.
          if (entry.mtime_ns != expected_mtime ||
              entry.content.size() != next_offset ||
              entry.content.size() + data.size() > options_.data_cache_file_limit) {
            return;
          }
          util::Append(&entry.content, data);
          data_cache_bytes_ += data.size();
          ++read_ahead_fills_;
          EvictDataIfNeeded();
        });
  }
}

void CachingFs::PrefetchLookups(const FileHandle& dir, const std::vector<std::string>& names,
                                const Credentials& cred) {
  if (async_ops_ == nullptr) {
    return;
  }
  for (const std::string& name : names) {
    auto key = std::make_pair(Key(dir), name);
    auto it = name_cache_.find(key);
    if (it != name_cache_.end() && it->second.expiry_ns > clock_->now_ns()) {
      continue;
    }
    ++prefetches_issued_;
    async_ops_->LookupAsync(dir, name, cred,
                            [this, key](Stat s, FileHandle fh, Fattr attr) {
                              if (s == Stat::kOk) {
                                StoreAttr(fh, attr);
                                name_cache_[key] = NameEntry{fh, ExpiryFor(attr)};
                              } else if (s == Stat::kNoEnt) {
                                name_cache_.erase(key);
                              }
                            });
  }
}

void CachingFs::PrefetchAttrs(const std::vector<FileHandle>& handles) {
  if (async_ops_ == nullptr) {
    return;
  }
  for (const FileHandle& fh : handles) {
    auto it = attr_cache_.find(Key(fh));
    if (it != attr_cache_.end() && it->second.expiry_ns > clock_->now_ns()) {
      continue;
    }
    ++prefetches_issued_;
    FileHandle copy = fh;
    async_ops_->GetAttrAsync(fh, [this, copy](Stat s, Fattr attr) {
      if (s == Stat::kOk) {
        StoreAttr(copy, attr);
      }
    });
  }
}

Stat CachingFs::Write(const FileHandle& fh, const Credentials& cred, uint64_t offset,
                      const util::Bytes& data, bool stable, Fattr* attr) {
  obs::ScopedSpan op_span(spans_, "cache.Write", "nfs.cache");
  if (options_.write_behind && !stable) {
    return BufferWrite(fh, cred, offset, data, attr);
  }
  if (options_.write_behind) {
    // A stable write overtaking buffered older bytes would let them
    // overwrite it at the next flush; push them out first.
    Stat fs = FlushForRead(fh);
    if (fs != Stat::kOk) {
      return fs;
    }
  }
  Stat s = backend_->Write(fh, cred, offset, data, stable, attr);
  if (s != Stat::kOk) {
    return s;
  }
  std::string key = Key(fh);
  // Fold the write into the cached prefix when it extends or overlaps it;
  // otherwise drop the cached data.
  auto it = data_cache_.find(key);
  if (it != data_cache_.end()) {
    DataEntry& entry = it->second;
    if (offset <= entry.content.size() &&
        offset + data.size() <= options_.data_cache_file_limit) {
      size_t new_size = std::max<size_t>(entry.content.size(), offset + data.size());
      data_cache_bytes_ += new_size - entry.content.size();
      entry.content.resize(new_size);
      std::copy(data.begin(), data.end(), entry.content.begin() + static_cast<long>(offset));
      entry.mtime_ns = attr->mtime_ns;
      EvictDataIfNeeded();
    } else {
      ForgetData(key);
    }
  } else if (options_.enable_data_cache && offset == 0 &&
             data.size() <= options_.data_cache_file_limit) {
    data_cache_[key] = DataEntry{attr->mtime_ns, data};
    data_cache_bytes_ += data.size();
    EvictDataIfNeeded();
  }
  StoreAttr(fh, *attr);
  return s;
}

// --- Write-behind engine -----------------------------------------------------

Stat CachingFs::BufferWrite(const FileHandle& fh, const Credentials& cred, uint64_t offset,
                            const util::Bytes& data, Fattr* attr) {
  const std::string key = Key(fh);
  auto attr_it = attr_cache_.find(key);
  if (attr_it == attr_cache_.end()) {
    // First touch: base attributes to synthesize post-op results from.
    Fattr fetched;
    Stat s = backend_->GetAttr(fh, &fetched);
    if (s != Stat::kOk) {
      if (s == Stat::kStale) {
        InvalidateHandle(fh);
      }
      return s;
    }
    StoreAttr(fh, fetched);
    attr_it = attr_cache_.find(key);
  }
  WriteState& st = write_state_[key];
  st.fh = fh;
  st.cred = cred;
  AddDirtyExtent(&st, offset, data);
  // Synthesize the post-op attributes locally: size grows, mtime moves
  // on the local clock, so reads served from this cache stay coherent
  // with the buffered bytes.  The flush replaces these with the
  // server's post-op attributes.
  AttrEntry& entry = attr_it->second;
  entry.attr.size = std::max(entry.attr.size, offset + data.size());
  entry.attr.mtime_ns = clock_->now_ns();
  entry.attr.ctime_ns = entry.attr.mtime_ns;
  entry.expiry_ns = ExpiryFor(entry.attr);
  entry.from_server = false;
  *attr = entry.attr;
  // Fold into the data cache exactly like the write-through path.
  auto it = data_cache_.find(key);
  if (it != data_cache_.end()) {
    DataEntry& dentry = it->second;
    if (offset <= dentry.content.size() &&
        offset + data.size() <= options_.data_cache_file_limit) {
      size_t new_size = std::max<size_t>(dentry.content.size(), offset + data.size());
      data_cache_bytes_ += new_size - dentry.content.size();
      dentry.content.resize(new_size);
      std::copy(data.begin(), data.end(), dentry.content.begin() + static_cast<long>(offset));
      dentry.mtime_ns = attr->mtime_ns;
      EvictDataIfNeeded();
    } else {
      ForgetData(key);
    }
  } else if (options_.enable_data_cache && offset == 0 &&
             data.size() <= options_.data_cache_file_limit) {
    data_cache_[key] = DataEntry{attr->mtime_ns, data};
    data_cache_bytes_ += data.size();
    EvictDataIfNeeded();
  }
  PublishDirtyGauge();
  if (dirty_bytes_ + unstable_bytes_ > options_.write_behind_limit_bytes) {
    // Backpressure: the dirty pool is bounded, so stabilize everything
    // before admitting more buffered data.
    Stat s = FlushAllFiles();
    if (s != Stat::kOk) {
      return s;
    }
  }
  return Stat::kOk;
}

void CachingFs::AddDirtyExtent(WriteState* st, uint64_t offset, const util::Bytes& data) {
  uint64_t start = offset;
  uint64_t end = offset + data.size();
  util::Bytes merged = data;
  auto it = st->dirty.lower_bound(start);
  if (it != st->dirty.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.size() >= start) {
      it = prev;
    }
  }
  // Absorb every overlapping or adjacent extent; the incoming bytes win
  // on overlap (they are newer).
  while (it != st->dirty.end() && it->first <= end) {
    uint64_t e_start = it->first;
    uint64_t e_end = e_start + it->second.size();
    uint64_t new_start = std::min(start, e_start);
    uint64_t new_end = std::max(end, e_end);
    util::Bytes buf(new_end - new_start, 0);
    std::copy(it->second.begin(), it->second.end(),
              buf.begin() + static_cast<long>(e_start - new_start));
    std::copy(merged.begin(), merged.end(),
              buf.begin() + static_cast<long>(start - new_start));
    dirty_bytes_ -= it->second.size();
    it = st->dirty.erase(it);
    merged = std::move(buf);
    start = new_start;
    end = new_end;
  }
  dirty_bytes_ += merged.size();
  st->dirty[start] = std::move(merged);
}

Stat CachingFs::SendDirty(const std::string& key, bool allow_async) {
  auto state_it = write_state_.find(key);
  if (state_it == write_state_.end() || state_it->second.dirty.empty()) {
    return Stat::kOk;
  }
  WriteState& st = state_it->second;
  ++flushes_;
  std::map<uint64_t, util::Bytes> batch;
  batch.swap(st.dirty);
  for (const auto& [off, bytes] : batch) {
    dirty_bytes_ -= bytes.size();
  }
  const FileHandle fh = st.fh;
  const Credentials cred = st.cred;
  Stat first_error = Stat::kOk;
  for (auto& [off, bytes] : batch) {
    auto pe = std::make_shared<PendingExtent>();
    pe->data = std::move(bytes);
    pe->seq = write_seq_++;
    auto existing = st.unstable.find(off);
    if (existing != st.unstable.end()) {
      unstable_bytes_ -= existing->second->data.size();
    }
    unstable_bytes_ += pe->data.size();
    st.unstable[off] = pe;
    m_commit_batched_writes_->Increment();
    if (allow_async && async_ops_ != nullptr) {
      uint64_t offset = off;
      async_ops_->WriteAsync(
          fh, cred, offset, pe->data, /*stable=*/false,
          [this, key, fh, pe](Stat s, Fattr attr, uint64_t verf) {
            pe->acked = true;
            pe->stat = s;
            pe->verf = verf;
            if (s == Stat::kOk) {
              // Adopt the server's post-op attributes, keeping the
              // cached data valid under the authoritative mtime.
              auto d = data_cache_.find(key);
              if (d != data_cache_.end()) {
                d->second.mtime_ns = attr.mtime_ns;
              }
              StoreAttr(fh, attr);
            }
          });
    } else {
      Fattr attr;
      Stat s = backend_->Write(fh, cred, off, pe->data, /*stable=*/false, &attr);
      pe->acked = true;
      pe->stat = s;
      pe->verf = backend_->WriteVerf();
      if (s == Stat::kOk) {
        auto d = data_cache_.find(key);
        if (d != data_cache_.end()) {
          d->second.mtime_ns = attr.mtime_ns;
        }
        StoreAttr(fh, attr);
      } else if (first_error == Stat::kOk) {
        first_error = s;
      }
    }
  }
  PublishDirtyGauge();
  return first_error;
}

Stat CachingFs::FlushForRead(const FileHandle& fh) {
  const std::string key = Key(fh);
  auto it = write_state_.find(key);
  if (it == write_state_.end() || it->second.dirty.empty()) {
    return Stat::kOk;
  }
  obs::ScopedSpan flush_span(spans_, "nfs.cache.flush", "nfs.cache");
  if (obs::Span* s = flush_span.span()) {
    s->detail = "read-barrier";
  }
  return SendDirty(key, /*allow_async=*/false);
}

Stat CachingFs::CommitPipeline(const FileHandle& fh) {
  const std::string key = Key(fh);
  obs::ScopedSpan flush_span(spans_, "nfs.cache.flush", "nfs.cache");
  auto fast_it = write_state_.find(key);
  if (fast_it != write_state_.end() && fast_it->second.unstable.empty() &&
      fast_it->second.dirty.size() == 1 &&
      fast_it->second.dirty.begin()->second.size() < options_.stable_write_max_bytes) {
    // Small-file close: one WRITE(FILE_SYNC) is durable on reply, so the
    // COMMIT round trip (and its verifier bookkeeping) is unnecessary.
    WriteState& st = fast_it->second;
    const uint64_t off = st.dirty.begin()->first;
    util::Bytes data = std::move(st.dirty.begin()->second);
    const FileHandle wfh = st.fh;
    const Credentials cred = st.cred;
    dirty_bytes_ -= data.size();
    write_state_.erase(fast_it);
    PublishDirtyGauge();
    if (obs::Span* s = flush_span.span()) {
      s->detail = "stable-write";
    }
    m_commit_batched_writes_->Increment();
    m_commit_stable_writes_->Increment();
    Fattr attr;
    Stat s = backend_->Write(wfh, cred, off, data, /*stable=*/true, &attr);
    if (s != Stat::kOk) {
      // Re-buffer the extent so a retried close (or the backpressure
      // flush) can send it again rather than silently dropping bytes.
      WriteState& back = write_state_[key];
      back.fh = wfh;
      back.cred = cred;
      AddDirtyExtent(&back, off, data);
      PublishDirtyGauge();
      return s;
    }
    auto d = data_cache_.find(key);
    if (d != data_cache_.end()) {
      d->second.mtime_ns = attr.mtime_ns;
    }
    StoreAttr(wfh, attr);
    return Stat::kOk;
  }
  m_commit_calls_->Increment();
  // Bounded: each round either confirms extents or the server keeps
  // restarting under us — after that many reboots mid-close, give up.
  constexpr int kMaxCommitAttempts = 8;
  for (int attempt = 0; attempt < kMaxCommitAttempts; ++attempt) {
    Stat send = SendDirty(key, /*allow_async=*/true);
    if (send != Stat::kOk) {
      return send;
    }
    // The synchronous COMMIT pumps the channel: pipelined WRITE replies
    // land (in order) before its own reply is matched.
    Stat cs = backend_->Commit(fh);
    if (cs != Stat::kOk) {
      return cs;
    }
    const uint64_t commit_verf = backend_->WriteVerf();
    auto it = write_state_.find(key);
    if (it == write_state_.end()) {
      return Stat::kOk;
    }
    WriteState& st = it->second;
    // Retain-until-confirmed: an extent leaves the replay buffer only if
    // its WRITE succeeded under the same boot instance this COMMIT saw.
    std::vector<uint64_t> confirmed;
    for (const auto& [off, pe] : st.unstable) {
      if (pe->acked && pe->stat == Stat::kOk && pe->verf == commit_verf) {
        confirmed.push_back(off);
      } else if (pe->acked && pe->stat != Stat::kOk && pe->stat != Stat::kIo) {
        return pe->stat;  // Hard server verdict (kAccess, kStale, ...).
      }
    }
    for (uint64_t off : confirmed) {
      auto ue = st.unstable.find(off);
      unstable_bytes_ -= ue->second->data.size();
      st.unstable.erase(ue);
    }
    if (st.unstable.empty() && st.dirty.empty()) {
      write_state_.erase(it);
      PublishDirtyGauge();
      return Stat::kOk;
    }
    if (!st.unstable.empty()) {
      // Survivors: lost to a reboot (verifier mismatch) or outcome
      // unknown (dropped reply).  Rebuild the dirty set with survivors
      // in original issue order, then any still-dirty bytes on top —
      // they are newer — and go around.
      ++commit_replays_;
      m_commit_replays_->Increment();
      std::vector<std::pair<uint64_t, std::shared_ptr<PendingExtent>>> survivors(
          st.unstable.begin(), st.unstable.end());
      std::sort(survivors.begin(), survivors.end(),
                [](const auto& a, const auto& b) { return a.second->seq < b.second->seq; });
      st.unstable.clear();
      std::map<uint64_t, util::Bytes> newest;
      newest.swap(st.dirty);
      for (const auto& [off, bytes] : newest) {
        dirty_bytes_ -= bytes.size();
      }
      for (const auto& [off, pe] : survivors) {
        unstable_bytes_ -= pe->data.size();
        AddDirtyExtent(&st, off, pe->data);
      }
      for (const auto& [off, bytes] : newest) {
        AddDirtyExtent(&st, off, bytes);
      }
      PublishDirtyGauge();
    }
  }
  return Stat::kIo;
}

Stat CachingFs::FlushAllFiles() {
  std::vector<FileHandle> files;
  files.reserve(write_state_.size());
  for (const auto& [key, st] : write_state_) {
    files.push_back(st.fh);
  }
  Stat first_error = Stat::kOk;
  for (const FileHandle& fh : files) {
    Stat s = CommitPipeline(fh);
    if (s != Stat::kOk && first_error == Stat::kOk) {
      first_error = s;
    }
  }
  return first_error;
}

void CachingFs::DropWriteState(const std::string& key) {
  auto it = write_state_.find(key);
  if (it == write_state_.end()) {
    return;
  }
  for (const auto& [off, bytes] : it->second.dirty) {
    dirty_bytes_ -= bytes.size();
  }
  for (const auto& [off, pe] : it->second.unstable) {
    unstable_bytes_ -= pe->data.size();
  }
  write_state_.erase(it);
  PublishDirtyGauge();
}

bool CachingFs::HasBufferedWrites(const std::string& key) const {
  auto it = write_state_.find(key);
  return it != write_state_.end() &&
         (!it->second.dirty.empty() || !it->second.unstable.empty());
}

Stat CachingFs::Open(const FileHandle& fh, const Credentials& cred) {
  (void)cred;
  if (!options_.close_to_open) {
    return Stat::kOk;
  }
  const std::string key = Key(fh);
  if (HasBufferedWrites(key)) {
    // Our own un-flushed data is by definition the newest view; a server
    // round trip could only hand back staler attributes.
    return Stat::kOk;
  }
  auto it = attr_cache_.find(key);
  if (it != attr_cache_.end() && it->second.from_server &&
      it->second.fetched_ns == clock_->now_ns()) {
    // Attributes just arrived from the server (the lookup or create that
    // resolved this open); a second GETATTR could not learn more.
    return Stat::kOk;
  }
  obs::ScopedSpan op_span(spans_, "cache.Open", "nfs.cache");
  ++open_revalidations_;
  Fattr attr;
  Stat s = backend_->GetAttr(fh, &attr);
  if (s == Stat::kOk) {
    StoreAttr(fh, attr);  // Drops cached data if the file changed.
  } else if (s == Stat::kStale) {
    InvalidateHandle(fh);
  }
  return s;
}

Stat CachingFs::Close(const FileHandle& fh, const Credentials& cred) {
  (void)cred;
  obs::ScopedSpan op_span(spans_, "cache.Close", "nfs.cache");
  return Commit(fh);
}

Stat CachingFs::Create(const FileHandle& dir, const std::string& name, const Credentials& cred,
                       const Sattr& sattr, FileHandle* out, Fattr* attr) {
  obs::ScopedSpan op_span(spans_, "cache.Create", "nfs.cache");
  Stat s = backend_->Create(dir, name, cred, sattr, out, attr);
  if (s == Stat::kOk) {
    StoreAttr(*out, *attr);
    name_cache_[{Key(dir), name}] = NameEntry{*out, ExpiryFor(*attr)};
    ForgetParentAttrs(dir);
  }
  return s;
}

Stat CachingFs::Mkdir(const FileHandle& dir, const std::string& name, const Credentials& cred,
                      uint32_t mode, FileHandle* out, Fattr* attr) {
  obs::ScopedSpan op_span(spans_, "cache.Mkdir", "nfs.cache");
  Stat s = backend_->Mkdir(dir, name, cred, mode, out, attr);
  if (s == Stat::kOk) {
    StoreAttr(*out, *attr);
    name_cache_[{Key(dir), name}] = NameEntry{*out, ExpiryFor(*attr)};
    ForgetParentAttrs(dir);
  }
  return s;
}

Stat CachingFs::Symlink(const FileHandle& dir, const std::string& name,
                        const std::string& target, const Credentials& cred, FileHandle* out,
                        Fattr* attr) {
  obs::ScopedSpan op_span(spans_, "cache.Symlink", "nfs.cache");
  Stat s = backend_->Symlink(dir, name, target, cred, out, attr);
  if (s == Stat::kOk) {
    StoreAttr(*out, *attr);
    name_cache_[{Key(dir), name}] = NameEntry{*out, ExpiryFor(*attr)};
    ForgetParentAttrs(dir);
  }
  return s;
}

Stat CachingFs::Remove(const FileHandle& dir, const std::string& name,
                       const Credentials& cred) {
  obs::ScopedSpan op_span(spans_, "cache.Remove", "nfs.cache");
  Stat s = backend_->Remove(dir, name, cred);
  if (s == Stat::kOk) {
    auto it = name_cache_.find({Key(dir), name});
    if (it != name_cache_.end()) {
      // Buffered writes for a removed file have nowhere to go.
      DropWriteState(Key(it->second.fh));
      InvalidateHandle(it->second.fh);
      name_cache_.erase(it);
    }
    ForgetParentAttrs(dir);
  }
  return s;
}

Stat CachingFs::Rmdir(const FileHandle& dir, const std::string& name, const Credentials& cred) {
  obs::ScopedSpan op_span(spans_, "cache.Rmdir", "nfs.cache");
  Stat s = backend_->Rmdir(dir, name, cred);
  if (s == Stat::kOk) {
    name_cache_.erase({Key(dir), name});
    ForgetParentAttrs(dir);
  }
  return s;
}

Stat CachingFs::Rename(const FileHandle& from_dir, const std::string& from_name,
                       const FileHandle& to_dir, const std::string& to_name,
                       const Credentials& cred) {
  obs::ScopedSpan op_span(spans_, "cache.Rename", "nfs.cache");
  Stat s = backend_->Rename(from_dir, from_name, to_dir, to_name, cred);
  if (s == Stat::kOk) {
    name_cache_.erase({Key(from_dir), from_name});
    name_cache_.erase({Key(to_dir), to_name});
    ForgetParentAttrs(from_dir);
    ForgetParentAttrs(to_dir);
  }
  return s;
}

Stat CachingFs::Link(const FileHandle& target, const FileHandle& dir,
                     const std::string& name, const Credentials& cred) {
  obs::ScopedSpan op_span(spans_, "cache.Link", "nfs.cache");
  Stat s = backend_->Link(target, dir, name, cred);
  if (s == Stat::kOk) {
    attr_cache_.erase(Key(target));  // nlink/ctime changed.
    name_cache_[{Key(dir), name}] = NameEntry{target, clock_->now_ns()};  // Expired entry.
    ForgetParentAttrs(dir);
  }
  return s;
}

Stat CachingFs::ReadDir(const FileHandle& dir, const Credentials& cred, uint64_t cookie,
                        uint32_t max_entries, std::vector<DirEntry>* entries, bool* eof) {
  obs::ScopedSpan op_span(spans_, "cache.ReadDir", "nfs.cache");
  return backend_->ReadDir(dir, cred, cookie, max_entries, entries, eof);
}

Stat CachingFs::FsStat(const FileHandle& fh, uint64_t* total_bytes, uint64_t* used_bytes) {
  obs::ScopedSpan op_span(spans_, "cache.FsStat", "nfs.cache");
  return backend_->FsStat(fh, total_bytes, used_bytes);
}

Stat CachingFs::Commit(const FileHandle& fh) {
  obs::ScopedSpan op_span(spans_, "cache.Commit", "nfs.cache");
  if (options_.write_behind) {
    return CommitPipeline(fh);
  }
  return backend_->Commit(fh);
}

void CachingFs::ForgetParentAttrs(const FileHandle& dir) {
  // Plain NFS3 must re-fetch the parent's attributes after changing it.
  // In lease mode the server's callbacks cover *other* clients' changes,
  // and our own mutation does not invalidate what we know — this is a
  // large part of the "enhanced caching" RPC savings (paper §3.3).
  if (!options_.use_leases) {
    attr_cache_.erase(Key(dir));
  }
}

void CachingFs::InvalidateHandle(const FileHandle& fh) {
  std::string key = Key(fh);
  attr_cache_.erase(key);
  ForgetData(key);
  for (auto it = access_cache_.begin(); it != access_cache_.end();) {
    if (it->first.first == key) {
      it = access_cache_.erase(it);
    } else {
      ++it;
    }
  }
}

void CachingFs::InvalidateAll() {
  // Caches only: buffered write-behind data is *unwritten application
  // data*, not a cache, and survives (it re-fetches attributes lazily).
  attr_cache_.clear();
  name_cache_.clear();
  access_cache_.clear();
  data_cache_.clear();
  data_cache_bytes_ = 0;
}

}  // namespace nfs
