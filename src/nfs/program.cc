#include "src/nfs/program.h"

#include "src/xdr/xdr.h"

namespace nfs {
namespace {

void PutStat(xdr::Encoder* enc, Stat s) { enc->PutUint32(static_cast<uint32_t>(s)); }

// Common tail for procedures returning (fh, fattr) on success.
util::Bytes EncodeHandleAttrResult(Stat s, const FileHandle& fh, const Fattr& attr) {
  xdr::Encoder enc;
  PutStat(&enc, s);
  if (s == Stat::kOk) {
    enc.PutOpaque(fh);
    attr.Encode(&enc);
  }
  return enc.Take();
}

util::Bytes EncodeStatOnly(Stat s) {
  xdr::Encoder enc;
  PutStat(&enc, s);
  return enc.Take();
}

}  // namespace

util::Result<util::Bytes> NfsProgram::HandleWire(uint32_t proc, const util::Bytes& args) {
  xdr::Decoder dec(args);
  ASSIGN_OR_RETURN(Credentials cred, Credentials::Decode(&dec));
  return Handle(cred, proc, dec.TakeRemaining());
}

util::Result<util::Bytes> NfsProgram::Handle(const Credentials& cred, uint32_t proc,
                                             const util::Bytes& args) {
  clock_->Advance(costs_->nfs_server_op_ns, obs::TimeCategory::kCpu);
  ++ops_handled_;
  xdr::Decoder dec(args);

  switch (proc) {
    case kProcNull: {
      return util::Bytes{};
    }
    case kProcGetAttr: {
      ASSIGN_OR_RETURN(FileHandle fh, dec.GetOpaque());
      Fattr attr;
      Stat s = fs_->GetAttr(fh, &attr);
      attr.lease_ns = lease_ns_;
      xdr::Encoder enc;
      PutStat(&enc, s);
      if (s == Stat::kOk) {
        attr.Encode(&enc);
      }
      return enc.Take();
    }
    case kProcSetAttr: {
      ASSIGN_OR_RETURN(FileHandle fh, dec.GetOpaque());
      ASSIGN_OR_RETURN(Sattr sattr, Sattr::Decode(&dec));
      Fattr attr;
      Stat s = fs_->SetAttr(fh, cred, sattr, &attr);
      attr.lease_ns = lease_ns_;
      xdr::Encoder enc;
      PutStat(&enc, s);
      if (s == Stat::kOk) {
        attr.Encode(&enc);
      }
      return enc.Take();
    }
    case kProcLookup: {
      ASSIGN_OR_RETURN(FileHandle dir, dec.GetOpaque());
      ASSIGN_OR_RETURN(std::string name, dec.GetString());
      FileHandle out;
      Fattr attr;
      Stat s = fs_->Lookup(dir, name, cred, &out, &attr);
      attr.lease_ns = lease_ns_;
      return EncodeHandleAttrResult(s, out, attr);
    }
    case kProcAccess: {
      ASSIGN_OR_RETURN(FileHandle fh, dec.GetOpaque());
      ASSIGN_OR_RETURN(uint32_t want, dec.GetUint32());
      uint32_t allowed = 0;
      Stat s = fs_->Access(fh, cred, want, &allowed);
      xdr::Encoder enc;
      PutStat(&enc, s);
      if (s == Stat::kOk) {
        enc.PutUint32(allowed);
      }
      return enc.Take();
    }
    case kProcReadLink: {
      ASSIGN_OR_RETURN(FileHandle fh, dec.GetOpaque());
      std::string target;
      Stat s = fs_->ReadLink(fh, cred, &target);
      xdr::Encoder enc;
      PutStat(&enc, s);
      if (s == Stat::kOk) {
        enc.PutString(target);
      }
      return enc.Take();
    }
    case kProcRead: {
      ASSIGN_OR_RETURN(FileHandle fh, dec.GetOpaque());
      ASSIGN_OR_RETURN(uint64_t offset, dec.GetUint64());
      ASSIGN_OR_RETURN(uint32_t count, dec.GetUint32());
      util::Bytes data;
      bool eof = false;
      Stat s = fs_->Read(fh, cred, offset, count, &data, &eof);
      xdr::Encoder enc;
      PutStat(&enc, s);
      if (s == Stat::kOk) {
        enc.PutOpaque(data);
        enc.PutBool(eof);
      }
      return enc.Take();
    }
    case kProcWrite: {
      ASSIGN_OR_RETURN(FileHandle fh, dec.GetOpaque());
      ASSIGN_OR_RETURN(uint64_t offset, dec.GetUint64());
      ASSIGN_OR_RETURN(bool stable, dec.GetBool());
      ASSIGN_OR_RETURN(util::Bytes data, dec.GetOpaque());
      Fattr attr;
      Stat s = fs_->Write(fh, cred, offset, data, stable, &attr);
      attr.lease_ns = lease_ns_;
      xdr::Encoder enc;
      PutStat(&enc, s);
      if (s == Stat::kOk) {
        attr.Encode(&enc);
        enc.PutUint64(fs_->WriteVerf());  // writeverf3 (RFC 1813 §3.3.7)
      }
      return enc.Take();
    }
    case kProcCreate: {
      ASSIGN_OR_RETURN(FileHandle dir, dec.GetOpaque());
      ASSIGN_OR_RETURN(std::string name, dec.GetString());
      ASSIGN_OR_RETURN(Sattr sattr, Sattr::Decode(&dec));
      FileHandle out;
      Fattr attr;
      Stat s = fs_->Create(dir, name, cred, sattr, &out, &attr);
      attr.lease_ns = lease_ns_;
      return EncodeHandleAttrResult(s, out, attr);
    }
    case kProcMkdir: {
      ASSIGN_OR_RETURN(FileHandle dir, dec.GetOpaque());
      ASSIGN_OR_RETURN(std::string name, dec.GetString());
      ASSIGN_OR_RETURN(uint32_t mode, dec.GetUint32());
      FileHandle out;
      Fattr attr;
      Stat s = fs_->Mkdir(dir, name, cred, mode, &out, &attr);
      attr.lease_ns = lease_ns_;
      return EncodeHandleAttrResult(s, out, attr);
    }
    case kProcSymlink: {
      ASSIGN_OR_RETURN(FileHandle dir, dec.GetOpaque());
      ASSIGN_OR_RETURN(std::string name, dec.GetString());
      ASSIGN_OR_RETURN(std::string target, dec.GetString());
      FileHandle out;
      Fattr attr;
      Stat s = fs_->Symlink(dir, name, target, cred, &out, &attr);
      attr.lease_ns = lease_ns_;
      return EncodeHandleAttrResult(s, out, attr);
    }
    case kProcRemove: {
      ASSIGN_OR_RETURN(FileHandle dir, dec.GetOpaque());
      ASSIGN_OR_RETURN(std::string name, dec.GetString());
      return EncodeStatOnly(fs_->Remove(dir, name, cred));
    }
    case kProcRmdir: {
      ASSIGN_OR_RETURN(FileHandle dir, dec.GetOpaque());
      ASSIGN_OR_RETURN(std::string name, dec.GetString());
      return EncodeStatOnly(fs_->Rmdir(dir, name, cred));
    }
    case kProcRename: {
      ASSIGN_OR_RETURN(FileHandle from_dir, dec.GetOpaque());
      ASSIGN_OR_RETURN(std::string from_name, dec.GetString());
      ASSIGN_OR_RETURN(FileHandle to_dir, dec.GetOpaque());
      ASSIGN_OR_RETURN(std::string to_name, dec.GetString());
      return EncodeStatOnly(fs_->Rename(from_dir, from_name, to_dir, to_name, cred));
    }
    case kProcLink: {
      ASSIGN_OR_RETURN(FileHandle target, dec.GetOpaque());
      ASSIGN_OR_RETURN(FileHandle dir, dec.GetOpaque());
      ASSIGN_OR_RETURN(std::string name, dec.GetString());
      return EncodeStatOnly(fs_->Link(target, dir, name, cred));
    }
    case kProcReadDir: {
      ASSIGN_OR_RETURN(FileHandle dir, dec.GetOpaque());
      ASSIGN_OR_RETURN(uint64_t cookie, dec.GetUint64());
      ASSIGN_OR_RETURN(uint32_t max_entries, dec.GetUint32());
      std::vector<DirEntry> entries;
      bool eof = false;
      Stat s = fs_->ReadDir(dir, cred, cookie, max_entries, &entries, &eof);
      xdr::Encoder enc;
      PutStat(&enc, s);
      if (s == Stat::kOk) {
        enc.PutUint32(static_cast<uint32_t>(entries.size()));
        for (const DirEntry& e : entries) {
          e.Encode(&enc);
        }
        enc.PutBool(eof);
      }
      return enc.Take();
    }
    case kProcFsStat: {
      ASSIGN_OR_RETURN(FileHandle fh, dec.GetOpaque());
      uint64_t total = 0;
      uint64_t used = 0;
      Stat s = fs_->FsStat(fh, &total, &used);
      xdr::Encoder enc;
      PutStat(&enc, s);
      if (s == Stat::kOk) {
        enc.PutUint64(total);
        enc.PutUint64(used);
      }
      return enc.Take();
    }
    case kProcCommit: {
      ASSIGN_OR_RETURN(FileHandle fh, dec.GetOpaque());
      Stat s = fs_->Commit(fh);
      xdr::Encoder enc;
      PutStat(&enc, s);
      if (s == Stat::kOk) {
        enc.PutUint64(fs_->WriteVerf());  // writeverf3 (RFC 1813 §3.3.21)
      }
      return enc.Take();
    }
    default:
      return util::InvalidArgument("NFS: unknown procedure");
  }
}

}  // namespace nfs
