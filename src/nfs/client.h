// Client-side NFS stub: implements FileSystemApi by marshaling each
// operation through a call function (a plain rpc::Client for NFS 3, or
// the SFS secure channel for remote SFS mounts).
#ifndef SFS_SRC_NFS_CLIENT_H_
#define SFS_SRC_NFS_CLIENT_H_

#include <functional>

#include "src/nfs/api.h"
#include "src/xdr/xdr.h"
#include "src/nfs/types.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace nfs {

// Issues one NFS call: (proc, marshaled args) -> marshaled results.
using CallFn =
    std::function<util::Result<util::Bytes>(uint32_t proc, const util::Bytes& args)>;

// Completion for an asynchronous call: the marshaled results, or the
// transport error.
using AsyncReplyFn = std::function<void(util::Result<util::Bytes>)>;

// Issues one NFS call without waiting for the reply; `done` runs when
// the reply arrives (a pipelined transport overlaps the round trips).
using AsyncCallFn =
    std::function<void(uint32_t proc, const util::Bytes& args, AsyncReplyFn done)>;

class NfsClient : public FileSystemApi, public AsyncFileOps {
 public:
  // Writes the per-request authentication header.  Plain NFS 3 marshals
  // the caller's claimed credentials (AUTH_UNIX — trusted by the server,
  // which is the weakness SFS fixes).  SFS mounts instead write the
  // session's authentication number for this user; the server maps it to
  // credentials established by the authserver, never trusting the wire.
  using HeaderEncoder = std::function<void(xdr::Encoder*, const Credentials&)>;

  NfsClient(CallFn call, HeaderEncoder header_encoder)
      : call_(std::move(call)), header_encoder_(std::move(header_encoder)) {}

  // The plain-NFS header: marshaled AUTH_UNIX-style credentials.
  static HeaderEncoder WireCredentialsEncoder();

  Stat GetAttr(const FileHandle& fh, Fattr* attr) override;
  Stat SetAttr(const FileHandle& fh, const Credentials& cred, const Sattr& sattr,
               Fattr* attr) override;
  Stat Lookup(const FileHandle& dir, const std::string& name, const Credentials& cred,
              FileHandle* out, Fattr* attr) override;
  Stat Access(const FileHandle& fh, const Credentials& cred, uint32_t want,
              uint32_t* allowed) override;
  Stat ReadLink(const FileHandle& fh, const Credentials& cred, std::string* target) override;
  Stat Read(const FileHandle& fh, const Credentials& cred, uint64_t offset, uint32_t count,
            util::Bytes* data, bool* eof) override;
  Stat Write(const FileHandle& fh, const Credentials& cred, uint64_t offset,
             const util::Bytes& data, bool stable, Fattr* attr) override;
  Stat Create(const FileHandle& dir, const std::string& name, const Credentials& cred,
              const Sattr& sattr, FileHandle* out, Fattr* attr) override;
  Stat Mkdir(const FileHandle& dir, const std::string& name, const Credentials& cred,
             uint32_t mode, FileHandle* out, Fattr* attr) override;
  Stat Symlink(const FileHandle& dir, const std::string& name, const std::string& target,
               const Credentials& cred, FileHandle* out, Fattr* attr) override;
  Stat Remove(const FileHandle& dir, const std::string& name, const Credentials& cred) override;
  Stat Rmdir(const FileHandle& dir, const std::string& name, const Credentials& cred) override;
  Stat Rename(const FileHandle& from_dir, const std::string& from_name,
              const FileHandle& to_dir, const std::string& to_name,
              const Credentials& cred) override;
  Stat Link(const FileHandle& target, const FileHandle& dir, const std::string& name,
            const Credentials& cred) override;
  Stat ReadDir(const FileHandle& dir, const Credentials& cred, uint64_t cookie,
               uint32_t max_entries, std::vector<DirEntry>* entries, bool* eof) override;
  Stat FsStat(const FileHandle& fh, uint64_t* total_bytes, uint64_t* used_bytes) override;
  Stat Commit(const FileHandle& fh) override;

  // The verifier from the most recent successful WRITE or COMMIT reply.
  uint64_t WriteVerf() const override { return last_write_verf_; }

  // Installs the pipelined call path used by the AsyncFileOps methods.
  // Without one, the async methods degrade to the synchronous CallFn and
  // run their callback before returning.
  void set_async_call(AsyncCallFn async_call) { async_call_ = std::move(async_call); }
  bool supports_async() const { return static_cast<bool>(async_call_); }

  // AsyncFileOps (read-ahead / prefetch surface for CachingFs).
  void ReadAsync(const FileHandle& fh, const Credentials& cred, uint64_t offset,
                 uint32_t count, ReadCallback done) override;
  void LookupAsync(const FileHandle& dir, const std::string& name, const Credentials& cred,
                   LookupCallback done) override;
  void GetAttrAsync(const FileHandle& fh, AttrCallback done) override;
  void WriteAsync(const FileHandle& fh, const Credentials& cred, uint64_t offset,
                  const util::Bytes& data, bool stable, WriteCallback done) override;

  // Number of calls actually sent (cache-effect instrumentation).
  uint64_t calls_sent() const { return calls_sent_; }
  // Calls issued through the asynchronous path.
  uint64_t async_calls_sent() const { return async_calls_sent_; }

  // Last transport-level (non-NFS) error, if a call returned kIo.
  const util::Status& last_transport_error() const { return last_transport_error_; }

 private:
  // Runs one call; returns the result decoder positioned after the status
  // word, or a Stat error (transport failures map to kIo).
  Stat Invoke(uint32_t proc, const util::Bytes& args, util::Bytes* results);

  CallFn call_;
  AsyncCallFn async_call_;
  HeaderEncoder header_encoder_;
  uint64_t calls_sent_ = 0;
  uint64_t async_calls_sent_ = 0;
  uint64_t last_write_verf_ = 0;
  util::Status last_transport_error_;
};

}  // namespace nfs

#endif  // SFS_SRC_NFS_CLIENT_H_
