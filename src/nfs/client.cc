#include "src/nfs/client.h"

#include "src/xdr/xdr.h"

namespace nfs {
namespace {

// Decodes a status word into Stat, mapping unknown values to kIo.
Stat DecodeStat(uint32_t raw) {
  switch (raw) {
    case 0:
      return Stat::kOk;
    case 1:
      return Stat::kPerm;
    case 2:
      return Stat::kNoEnt;
    case 5:
      return Stat::kIo;
    case 13:
      return Stat::kAccess;
    case 17:
      return Stat::kExist;
    case 20:
      return Stat::kNotDir;
    case 21:
      return Stat::kIsDir;
    case 22:
      return Stat::kInval;
    case 28:
      return Stat::kNoSpace;
    case 30:
      return Stat::kReadOnlyFs;
    case 63:
      return Stat::kNameTooLong;
    case 66:
      return Stat::kNotEmpty;
    case 70:
      return Stat::kStale;
    case 10001:
      return Stat::kBadHandle;
    case 10004:
      return Stat::kNotSupported;
    default:
      return Stat::kIo;
  }
}

// Parses the common (fh, fattr) success payload.
Stat ParseHandleAttr(util::Bytes results, FileHandle* out, Fattr* attr) {
  xdr::Decoder dec(std::move(results));
  auto fh = dec.GetOpaque();
  if (!fh.ok()) {
    return Stat::kIo;
  }
  auto parsed = Fattr::Decode(&dec);
  if (!parsed.ok()) {
    return Stat::kIo;
  }
  *out = std::move(fh).value();
  *attr = parsed.value();
  return Stat::kOk;
}

}  // namespace

NfsClient::HeaderEncoder NfsClient::WireCredentialsEncoder() {
  return [](xdr::Encoder* enc, const Credentials& cred) { cred.Encode(enc); };
}

Stat NfsClient::Invoke(uint32_t proc, const util::Bytes& args, util::Bytes* results) {
  ++calls_sent_;
  auto reply = call_(proc, args);
  if (!reply.ok()) {
    last_transport_error_ = reply.status();
    return Stat::kIo;
  }
  xdr::Decoder dec(std::move(reply).value());
  auto raw = dec.GetUint32();
  if (!raw.ok()) {
    return Stat::kIo;
  }
  Stat s = DecodeStat(raw.value());
  if (s == Stat::kOk) {
    *results = dec.TakeRemaining();
  }
  return s;
}

#define NFS_CLIENT_ENCODER(enc, cred)      \
  xdr::Encoder enc;                        \
  header_encoder_(&enc, (cred));

Stat NfsClient::GetAttr(const FileHandle& fh, Fattr* attr) {
  NFS_CLIENT_ENCODER(enc, Credentials::Anonymous());
  enc.PutOpaque(fh);
  util::Bytes results;
  Stat s = Invoke(kProcGetAttr, enc.Take(), &results);
  if (s != Stat::kOk) {
    return s;
  }
  xdr::Decoder dec(std::move(results));
  auto parsed = Fattr::Decode(&dec);
  if (!parsed.ok()) {
    return Stat::kIo;
  }
  *attr = parsed.value();
  return Stat::kOk;
}

Stat NfsClient::SetAttr(const FileHandle& fh, const Credentials& cred, const Sattr& sattr,
                        Fattr* attr) {
  NFS_CLIENT_ENCODER(enc, cred);
  enc.PutOpaque(fh);
  sattr.Encode(&enc);
  util::Bytes results;
  Stat s = Invoke(kProcSetAttr, enc.Take(), &results);
  if (s != Stat::kOk) {
    return s;
  }
  xdr::Decoder dec(std::move(results));
  auto parsed = Fattr::Decode(&dec);
  if (!parsed.ok()) {
    return Stat::kIo;
  }
  *attr = parsed.value();
  return Stat::kOk;
}

Stat NfsClient::Lookup(const FileHandle& dir, const std::string& name, const Credentials& cred,
                       FileHandle* out, Fattr* attr) {
  NFS_CLIENT_ENCODER(enc, cred);
  enc.PutOpaque(dir);
  enc.PutString(name);
  util::Bytes results;
  Stat s = Invoke(kProcLookup, enc.Take(), &results);
  if (s != Stat::kOk) {
    return s;
  }
  return ParseHandleAttr(std::move(results), out, attr);
}

Stat NfsClient::Access(const FileHandle& fh, const Credentials& cred, uint32_t want,
                       uint32_t* allowed) {
  NFS_CLIENT_ENCODER(enc, cred);
  enc.PutOpaque(fh);
  enc.PutUint32(want);
  util::Bytes results;
  Stat s = Invoke(kProcAccess, enc.Take(), &results);
  if (s != Stat::kOk) {
    return s;
  }
  xdr::Decoder dec(std::move(results));
  auto v = dec.GetUint32();
  if (!v.ok()) {
    return Stat::kIo;
  }
  *allowed = v.value();
  return Stat::kOk;
}

Stat NfsClient::ReadLink(const FileHandle& fh, const Credentials& cred, std::string* target) {
  NFS_CLIENT_ENCODER(enc, cred);
  enc.PutOpaque(fh);
  util::Bytes results;
  Stat s = Invoke(kProcReadLink, enc.Take(), &results);
  if (s != Stat::kOk) {
    return s;
  }
  xdr::Decoder dec(std::move(results));
  auto v = dec.GetString();
  if (!v.ok()) {
    return Stat::kIo;
  }
  *target = std::move(v).value();
  return Stat::kOk;
}

Stat NfsClient::Read(const FileHandle& fh, const Credentials& cred, uint64_t offset,
                     uint32_t count, util::Bytes* data, bool* eof) {
  NFS_CLIENT_ENCODER(enc, cred);
  enc.PutOpaque(fh);
  enc.PutUint64(offset);
  enc.PutUint32(count);
  util::Bytes results;
  Stat s = Invoke(kProcRead, enc.Take(), &results);
  if (s != Stat::kOk) {
    return s;
  }
  xdr::Decoder dec(std::move(results));
  auto d = dec.GetOpaque();
  auto e = dec.GetBool();
  if (!d.ok() || !e.ok()) {
    return Stat::kIo;
  }
  *data = std::move(d).value();
  *eof = e.value();
  return Stat::kOk;
}

Stat NfsClient::Write(const FileHandle& fh, const Credentials& cred, uint64_t offset,
                      const util::Bytes& data, bool stable, Fattr* attr) {
  NFS_CLIENT_ENCODER(enc, cred);
  enc.PutOpaque(fh);
  enc.PutUint64(offset);
  enc.PutBool(stable);
  enc.PutOpaque(data);
  util::Bytes results;
  Stat s = Invoke(kProcWrite, enc.Take(), &results);
  if (s != Stat::kOk) {
    return s;
  }
  xdr::Decoder dec(std::move(results));
  auto parsed = Fattr::Decode(&dec);
  auto verf = dec.GetUint64();
  if (!parsed.ok() || !verf.ok()) {
    return Stat::kIo;
  }
  *attr = parsed.value();
  last_write_verf_ = verf.value();
  return Stat::kOk;
}

Stat NfsClient::Create(const FileHandle& dir, const std::string& name, const Credentials& cred,
                       const Sattr& sattr, FileHandle* out, Fattr* attr) {
  NFS_CLIENT_ENCODER(enc, cred);
  enc.PutOpaque(dir);
  enc.PutString(name);
  sattr.Encode(&enc);
  util::Bytes results;
  Stat s = Invoke(kProcCreate, enc.Take(), &results);
  if (s != Stat::kOk) {
    return s;
  }
  return ParseHandleAttr(std::move(results), out, attr);
}

Stat NfsClient::Mkdir(const FileHandle& dir, const std::string& name, const Credentials& cred,
                      uint32_t mode, FileHandle* out, Fattr* attr) {
  NFS_CLIENT_ENCODER(enc, cred);
  enc.PutOpaque(dir);
  enc.PutString(name);
  enc.PutUint32(mode);
  util::Bytes results;
  Stat s = Invoke(kProcMkdir, enc.Take(), &results);
  if (s != Stat::kOk) {
    return s;
  }
  return ParseHandleAttr(std::move(results), out, attr);
}

Stat NfsClient::Symlink(const FileHandle& dir, const std::string& name,
                        const std::string& target, const Credentials& cred, FileHandle* out,
                        Fattr* attr) {
  NFS_CLIENT_ENCODER(enc, cred);
  enc.PutOpaque(dir);
  enc.PutString(name);
  enc.PutString(target);
  util::Bytes results;
  Stat s = Invoke(kProcSymlink, enc.Take(), &results);
  if (s != Stat::kOk) {
    return s;
  }
  return ParseHandleAttr(std::move(results), out, attr);
}

Stat NfsClient::Remove(const FileHandle& dir, const std::string& name,
                       const Credentials& cred) {
  NFS_CLIENT_ENCODER(enc, cred);
  enc.PutOpaque(dir);
  enc.PutString(name);
  util::Bytes results;
  return Invoke(kProcRemove, enc.Take(), &results);
}

Stat NfsClient::Rmdir(const FileHandle& dir, const std::string& name, const Credentials& cred) {
  NFS_CLIENT_ENCODER(enc, cred);
  enc.PutOpaque(dir);
  enc.PutString(name);
  util::Bytes results;
  return Invoke(kProcRmdir, enc.Take(), &results);
}

Stat NfsClient::Rename(const FileHandle& from_dir, const std::string& from_name,
                       const FileHandle& to_dir, const std::string& to_name,
                       const Credentials& cred) {
  NFS_CLIENT_ENCODER(enc, cred);
  enc.PutOpaque(from_dir);
  enc.PutString(from_name);
  enc.PutOpaque(to_dir);
  enc.PutString(to_name);
  util::Bytes results;
  return Invoke(kProcRename, enc.Take(), &results);
}

Stat NfsClient::Link(const FileHandle& target, const FileHandle& dir,
                     const std::string& name, const Credentials& cred) {
  NFS_CLIENT_ENCODER(enc, cred);
  enc.PutOpaque(target);
  enc.PutOpaque(dir);
  enc.PutString(name);
  util::Bytes results;
  return Invoke(kProcLink, enc.Take(), &results);
}

Stat NfsClient::ReadDir(const FileHandle& dir, const Credentials& cred, uint64_t cookie,
                        uint32_t max_entries, std::vector<DirEntry>* entries, bool* eof) {
  NFS_CLIENT_ENCODER(enc, cred);
  enc.PutOpaque(dir);
  enc.PutUint64(cookie);
  enc.PutUint32(max_entries);
  util::Bytes results;
  Stat s = Invoke(kProcReadDir, enc.Take(), &results);
  if (s != Stat::kOk) {
    return s;
  }
  xdr::Decoder dec(std::move(results));
  auto count = dec.GetUint32();
  if (!count.ok() || count.value() > max_entries) {
    return Stat::kIo;
  }
  entries->clear();
  for (uint32_t i = 0; i < count.value(); ++i) {
    auto e = DirEntry::Decode(&dec);
    if (!e.ok()) {
      return Stat::kIo;
    }
    entries->push_back(std::move(e).value());
  }
  auto e = dec.GetBool();
  if (!e.ok()) {
    return Stat::kIo;
  }
  *eof = e.value();
  return Stat::kOk;
}

Stat NfsClient::FsStat(const FileHandle& fh, uint64_t* total_bytes, uint64_t* used_bytes) {
  NFS_CLIENT_ENCODER(enc, Credentials::Anonymous());
  enc.PutOpaque(fh);
  util::Bytes results;
  Stat s = Invoke(kProcFsStat, enc.Take(), &results);
  if (s != Stat::kOk) {
    return s;
  }
  xdr::Decoder dec(std::move(results));
  auto total = dec.GetUint64();
  auto used = dec.GetUint64();
  if (!total.ok() || !used.ok()) {
    return Stat::kIo;
  }
  *total_bytes = total.value();
  *used_bytes = used.value();
  return Stat::kOk;
}

Stat NfsClient::Commit(const FileHandle& fh) {
  NFS_CLIENT_ENCODER(enc, Credentials::Anonymous());
  enc.PutOpaque(fh);
  util::Bytes results;
  Stat s = Invoke(kProcCommit, enc.Take(), &results);
  if (s != Stat::kOk) {
    return s;
  }
  xdr::Decoder dec(std::move(results));
  auto verf = dec.GetUint64();
  if (!verf.ok()) {
    return Stat::kIo;
  }
  last_write_verf_ = verf.value();
  return Stat::kOk;
}

void NfsClient::ReadAsync(const FileHandle& fh, const Credentials& cred, uint64_t offset,
                          uint32_t count, ReadCallback done) {
  if (!async_call_) {
    util::Bytes data;
    bool eof = false;
    Stat s = Read(fh, cred, offset, count, &data, &eof);
    done(s, std::move(data), eof);
    return;
  }
  NFS_CLIENT_ENCODER(enc, cred);
  enc.PutOpaque(fh);
  enc.PutUint64(offset);
  enc.PutUint32(count);
  ++calls_sent_;
  ++async_calls_sent_;
  async_call_(kProcRead, enc.Take(),
              [done = std::move(done)](util::Result<util::Bytes> reply) {
                if (!reply.ok()) {
                  done(Stat::kIo, {}, false);
                  return;
                }
                xdr::Decoder dec(std::move(reply).value());
                auto raw = dec.GetUint32();
                if (!raw.ok()) {
                  done(Stat::kIo, {}, false);
                  return;
                }
                Stat s = DecodeStat(raw.value());
                if (s != Stat::kOk) {
                  done(s, {}, false);
                  return;
                }
                auto d = dec.GetOpaque();
                auto e = dec.GetBool();
                if (!d.ok() || !e.ok()) {
                  done(Stat::kIo, {}, false);
                  return;
                }
                done(Stat::kOk, std::move(d).value(), e.value());
              });
}

void NfsClient::LookupAsync(const FileHandle& dir, const std::string& name,
                            const Credentials& cred, LookupCallback done) {
  if (!async_call_) {
    FileHandle out;
    Fattr attr;
    Stat s = Lookup(dir, name, cred, &out, &attr);
    done(s, std::move(out), attr);
    return;
  }
  NFS_CLIENT_ENCODER(enc, cred);
  enc.PutOpaque(dir);
  enc.PutString(name);
  ++calls_sent_;
  ++async_calls_sent_;
  async_call_(kProcLookup, enc.Take(),
              [done = std::move(done)](util::Result<util::Bytes> reply) {
                if (!reply.ok()) {
                  done(Stat::kIo, {}, Fattr{});
                  return;
                }
                xdr::Decoder dec(std::move(reply).value());
                auto raw = dec.GetUint32();
                if (!raw.ok()) {
                  done(Stat::kIo, {}, Fattr{});
                  return;
                }
                Stat s = DecodeStat(raw.value());
                if (s != Stat::kOk) {
                  done(s, {}, Fattr{});
                  return;
                }
                FileHandle out;
                Fattr attr;
                s = ParseHandleAttr(dec.TakeRemaining(), &out, &attr);
                done(s, std::move(out), attr);
              });
}

void NfsClient::GetAttrAsync(const FileHandle& fh, AttrCallback done) {
  if (!async_call_) {
    Fattr attr;
    Stat s = GetAttr(fh, &attr);
    done(s, attr);
    return;
  }
  NFS_CLIENT_ENCODER(enc, Credentials::Anonymous());
  enc.PutOpaque(fh);
  ++calls_sent_;
  ++async_calls_sent_;
  async_call_(kProcGetAttr, enc.Take(),
              [done = std::move(done)](util::Result<util::Bytes> reply) {
                if (!reply.ok()) {
                  done(Stat::kIo, Fattr{});
                  return;
                }
                xdr::Decoder dec(std::move(reply).value());
                auto raw = dec.GetUint32();
                if (!raw.ok()) {
                  done(Stat::kIo, Fattr{});
                  return;
                }
                Stat s = DecodeStat(raw.value());
                if (s != Stat::kOk) {
                  done(s, Fattr{});
                  return;
                }
                auto parsed = Fattr::Decode(&dec);
                if (!parsed.ok()) {
                  done(Stat::kIo, Fattr{});
                  return;
                }
                done(Stat::kOk, parsed.value());
              });
}

void NfsClient::WriteAsync(const FileHandle& fh, const Credentials& cred, uint64_t offset,
                           const util::Bytes& data, bool stable, WriteCallback done) {
  if (!async_call_) {
    Fattr attr;
    Stat s = Write(fh, cred, offset, data, stable, &attr);
    done(s, attr, last_write_verf_);
    return;
  }
  NFS_CLIENT_ENCODER(enc, cred);
  enc.PutOpaque(fh);
  enc.PutUint64(offset);
  enc.PutBool(stable);
  enc.PutOpaque(data);
  ++calls_sent_;
  ++async_calls_sent_;
  async_call_(kProcWrite, enc.Take(),
              [this, done = std::move(done)](util::Result<util::Bytes> reply) {
                if (!reply.ok()) {
                  done(Stat::kIo, Fattr{}, 0);
                  return;
                }
                xdr::Decoder dec(std::move(reply).value());
                auto raw = dec.GetUint32();
                if (!raw.ok()) {
                  done(Stat::kIo, Fattr{}, 0);
                  return;
                }
                Stat s = DecodeStat(raw.value());
                if (s != Stat::kOk) {
                  done(s, Fattr{}, 0);
                  return;
                }
                auto parsed = Fattr::Decode(&dec);
                auto verf = dec.GetUint64();
                if (!parsed.ok() || !verf.ok()) {
                  done(Stat::kIo, Fattr{}, 0);
                  return;
                }
                last_write_verf_ = verf.value();
                done(Stat::kOk, parsed.value(), verf.value());
              });
}

#undef NFS_CLIENT_ENCODER

}  // namespace nfs
