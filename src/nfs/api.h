// Abstract file system operations interface.
//
// MemFs (the server-side store), NfsClient (the remote stub), and
// CachingFs (the client cache decorator) all implement this, so the VFS
// layer and the benchmarks are indifferent to whether a mount is local,
// plain NFS 3, or SFS — exactly the transparency the paper's /sfs
// namespace provides to applications.
#ifndef SFS_SRC_NFS_API_H_
#define SFS_SRC_NFS_API_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/nfs/types.h"
#include "src/util/bytes.h"

namespace nfs {

class FileSystemApi {
 public:
  virtual ~FileSystemApi() = default;

  virtual Stat GetAttr(const FileHandle& fh, Fattr* attr) = 0;
  virtual Stat SetAttr(const FileHandle& fh, const Credentials& cred, const Sattr& sattr,
                       Fattr* attr) = 0;
  virtual Stat Lookup(const FileHandle& dir, const std::string& name, const Credentials& cred,
                      FileHandle* out, Fattr* attr) = 0;
  virtual Stat Access(const FileHandle& fh, const Credentials& cred, uint32_t want,
                      uint32_t* allowed) = 0;
  virtual Stat ReadLink(const FileHandle& fh, const Credentials& cred, std::string* target) = 0;
  virtual Stat Read(const FileHandle& fh, const Credentials& cred, uint64_t offset,
                    uint32_t count, util::Bytes* data, bool* eof) = 0;
  virtual Stat Write(const FileHandle& fh, const Credentials& cred, uint64_t offset,
                     const util::Bytes& data, bool stable, Fattr* attr) = 0;
  virtual Stat Create(const FileHandle& dir, const std::string& name, const Credentials& cred,
                      const Sattr& sattr, FileHandle* out, Fattr* attr) = 0;
  virtual Stat Mkdir(const FileHandle& dir, const std::string& name, const Credentials& cred,
                     uint32_t mode, FileHandle* out, Fattr* attr) = 0;
  virtual Stat Symlink(const FileHandle& dir, const std::string& name,
                       const std::string& target, const Credentials& cred, FileHandle* out,
                       Fattr* attr) = 0;
  virtual Stat Remove(const FileHandle& dir, const std::string& name,
                      const Credentials& cred) = 0;
  virtual Stat Rmdir(const FileHandle& dir, const std::string& name,
                     const Credentials& cred) = 0;
  virtual Stat Rename(const FileHandle& from_dir, const std::string& from_name,
                      const FileHandle& to_dir, const std::string& to_name,
                      const Credentials& cred) = 0;
  // Hard link: new directory entry `name` in `dir` for the file `target`.
  virtual Stat Link(const FileHandle& target, const FileHandle& dir, const std::string& name,
                    const Credentials& cred) = 0;
  virtual Stat ReadDir(const FileHandle& dir, const Credentials& cred, uint64_t cookie,
                       uint32_t max_entries, std::vector<DirEntry>* entries, bool* eof) = 0;
  virtual Stat FsStat(const FileHandle& fh, uint64_t* total_bytes, uint64_t* used_bytes) = 0;
  virtual Stat Commit(const FileHandle& fh) = 0;
};

// Asynchronous subset of FileSystemApi used for read-ahead and batched
// prefetching over a pipelined transport: the call returns once the
// request is in flight and the callback runs when the reply arrives —
// typically while a later synchronous call is pumping the same channel.
// A backend without real concurrency may run the callback synchronously
// before returning.
class AsyncFileOps {
 public:
  virtual ~AsyncFileOps() = default;

  using ReadCallback = std::function<void(Stat stat, util::Bytes data, bool eof)>;
  using LookupCallback = std::function<void(Stat stat, FileHandle fh, Fattr attr)>;
  using AttrCallback = std::function<void(Stat stat, Fattr attr)>;

  virtual void ReadAsync(const FileHandle& fh, const Credentials& cred, uint64_t offset,
                         uint32_t count, ReadCallback done) = 0;
  virtual void LookupAsync(const FileHandle& dir, const std::string& name,
                           const Credentials& cred, LookupCallback done) = 0;
  virtual void GetAttrAsync(const FileHandle& fh, AttrCallback done) = 0;
};

}  // namespace nfs

#endif  // SFS_SRC_NFS_API_H_
