// Abstract file system operations interface.
//
// MemFs (the server-side store), NfsClient (the remote stub), and
// CachingFs (the client cache decorator) all implement this, so the VFS
// layer and the benchmarks are indifferent to whether a mount is local,
// plain NFS 3, or SFS — exactly the transparency the paper's /sfs
// namespace provides to applications.
#ifndef SFS_SRC_NFS_API_H_
#define SFS_SRC_NFS_API_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/nfs/types.h"
#include "src/util/bytes.h"

namespace nfs {

class FileSystemApi {
 public:
  virtual ~FileSystemApi() = default;

  virtual Stat GetAttr(const FileHandle& fh, Fattr* attr) = 0;
  virtual Stat SetAttr(const FileHandle& fh, const Credentials& cred, const Sattr& sattr,
                       Fattr* attr) = 0;
  virtual Stat Lookup(const FileHandle& dir, const std::string& name, const Credentials& cred,
                      FileHandle* out, Fattr* attr) = 0;
  virtual Stat Access(const FileHandle& fh, const Credentials& cred, uint32_t want,
                      uint32_t* allowed) = 0;
  virtual Stat ReadLink(const FileHandle& fh, const Credentials& cred, std::string* target) = 0;
  virtual Stat Read(const FileHandle& fh, const Credentials& cred, uint64_t offset,
                    uint32_t count, util::Bytes* data, bool* eof) = 0;
  virtual Stat Write(const FileHandle& fh, const Credentials& cred, uint64_t offset,
                     const util::Bytes& data, bool stable, Fattr* attr) = 0;
  virtual Stat Create(const FileHandle& dir, const std::string& name, const Credentials& cred,
                      const Sattr& sattr, FileHandle* out, Fattr* attr) = 0;
  virtual Stat Mkdir(const FileHandle& dir, const std::string& name, const Credentials& cred,
                     uint32_t mode, FileHandle* out, Fattr* attr) = 0;
  virtual Stat Symlink(const FileHandle& dir, const std::string& name,
                       const std::string& target, const Credentials& cred, FileHandle* out,
                       Fattr* attr) = 0;
  virtual Stat Remove(const FileHandle& dir, const std::string& name,
                      const Credentials& cred) = 0;
  virtual Stat Rmdir(const FileHandle& dir, const std::string& name,
                     const Credentials& cred) = 0;
  virtual Stat Rename(const FileHandle& from_dir, const std::string& from_name,
                      const FileHandle& to_dir, const std::string& to_name,
                      const Credentials& cred) = 0;
  // Hard link: new directory entry `name` in `dir` for the file `target`.
  virtual Stat Link(const FileHandle& target, const FileHandle& dir, const std::string& name,
                    const Credentials& cred) = 0;
  virtual Stat ReadDir(const FileHandle& dir, const Credentials& cred, uint64_t cookie,
                       uint32_t max_entries, std::vector<DirEntry>* entries, bool* eof) = 0;
  virtual Stat FsStat(const FileHandle& fh, uint64_t* total_bytes, uint64_t* used_bytes) = 0;
  virtual Stat Commit(const FileHandle& fh) = 0;

  // NFS3 write verifier (RFC 1813 §3.3.7): the cookie returned by the
  // most recent WRITE/COMMIT this instance saw.  A server returns its
  // boot-instance cookie; a client stub returns the one decoded from
  // the last reply; decorators forward.  A change between a WRITE and
  // the COMMIT that should stabilize it means the server rebooted and
  // unstable data may be lost — the writer must replay.
  virtual uint64_t WriteVerf() const { return 0; }

  // Close-to-open consistency hooks (Unix open/close, not NFS RPCs —
  // NFS3 is stateless, so these only steer client-side caching).  Open
  // is the moment a cache must revalidate so this opener sees every
  // previously closed write; Close must push buffered writes to stable
  // storage before returning.  The defaults preserve write-through
  // behavior: Open is a no-op and Close commits.
  virtual Stat Open(const FileHandle& fh, const Credentials& cred) {
    (void)fh;
    (void)cred;
    return Stat::kOk;
  }
  virtual Stat Close(const FileHandle& fh, const Credentials& cred) {
    (void)cred;
    return Commit(fh);
  }
};

// Asynchronous subset of FileSystemApi used for read-ahead and batched
// prefetching over a pipelined transport: the call returns once the
// request is in flight and the callback runs when the reply arrives —
// typically while a later synchronous call is pumping the same channel.
// A backend without real concurrency may run the callback synchronously
// before returning.
class AsyncFileOps {
 public:
  virtual ~AsyncFileOps() = default;

  using ReadCallback = std::function<void(Stat stat, util::Bytes data, bool eof)>;
  using LookupCallback = std::function<void(Stat stat, FileHandle fh, Fattr attr)>;
  using AttrCallback = std::function<void(Stat stat, Fattr attr)>;
  // Write completions additionally carry the server's write verifier
  // from the reply, so a write-behind cache can tell whether the bytes
  // survived into the instance a later COMMIT talked to.
  using WriteCallback = std::function<void(Stat stat, Fattr attr, uint64_t verf)>;

  virtual void ReadAsync(const FileHandle& fh, const Credentials& cred, uint64_t offset,
                         uint32_t count, ReadCallback done) = 0;
  virtual void LookupAsync(const FileHandle& dir, const std::string& name,
                           const Credentials& cred, LookupCallback done) = 0;
  virtual void GetAttrAsync(const FileHandle& fh, AttrCallback done) = 0;
  virtual void WriteAsync(const FileHandle& fh, const Credentials& cred, uint64_t offset,
                          const util::Bytes& data, bool stable, WriteCallback done) = 0;
};

}  // namespace nfs

#endif  // SFS_SRC_NFS_API_H_
