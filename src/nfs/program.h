// Server-side NFS3 RPC program: decodes calls, runs them against a
// FileSystemApi (MemFs), encodes replies, and charges the server CPU cost
// model per operation.
//
// Two entry points: HandleWire() decodes AUTH_UNIX-style credentials from
// the request and *trusts them* — the plain-NFS weakness the paper
// discusses — while Handle() takes credentials supplied out-of-band,
// which is how the SFS server substitutes authserver-mapped credentials
// (§3: "The server modifies requests slightly and tags them with
// appropriate credentials").
#ifndef SFS_SRC_NFS_PROGRAM_H_
#define SFS_SRC_NFS_PROGRAM_H_

#include "src/nfs/api.h"
#include "src/nfs/types.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace nfs {

class NfsProgram {
 public:
  NfsProgram(FileSystemApi* fs, sim::Clock* clock, const sim::CostModel* costs)
      : fs_(fs), clock_(clock), costs_(costs) {}

  // SFS read-write dialect: stamp every returned attribute structure with
  // a lease (paper §3.3).  Zero (the default) is plain NFS 3.
  void set_lease_ns(uint64_t lease_ns) { lease_ns_ = lease_ns; }

  // Wire entry: args = Credentials || proc-specific arguments.
  util::Result<util::Bytes> HandleWire(uint32_t proc, const util::Bytes& args);

  // Pre-authenticated entry: args carry only the proc-specific part.
  util::Result<util::Bytes> Handle(const Credentials& cred, uint32_t proc,
                                   const util::Bytes& args);

  uint64_t ops_handled() const { return ops_handled_; }

 private:
  FileSystemApi* fs_;
  sim::Clock* clock_;
  const sim::CostModel* costs_;
  uint64_t lease_ns_ = 0;
  uint64_t ops_handled_ = 0;
};

}  // namespace nfs

#endif  // SFS_SRC_NFS_PROGRAM_H_
