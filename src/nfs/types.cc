#include "src/nfs/types.h"

namespace nfs {

const char* StatName(Stat s) {
  switch (s) {
    case Stat::kOk:
      return "NFS3_OK";
    case Stat::kPerm:
      return "NFS3ERR_PERM";
    case Stat::kNoEnt:
      return "NFS3ERR_NOENT";
    case Stat::kIo:
      return "NFS3ERR_IO";
    case Stat::kAccess:
      return "NFS3ERR_ACCES";
    case Stat::kExist:
      return "NFS3ERR_EXIST";
    case Stat::kNotDir:
      return "NFS3ERR_NOTDIR";
    case Stat::kIsDir:
      return "NFS3ERR_ISDIR";
    case Stat::kInval:
      return "NFS3ERR_INVAL";
    case Stat::kNoSpace:
      return "NFS3ERR_NOSPC";
    case Stat::kReadOnlyFs:
      return "NFS3ERR_ROFS";
    case Stat::kNameTooLong:
      return "NFS3ERR_NAMETOOLONG";
    case Stat::kNotEmpty:
      return "NFS3ERR_NOTEMPTY";
    case Stat::kStale:
      return "NFS3ERR_STALE";
    case Stat::kBadHandle:
      return "NFS3ERR_BADHANDLE";
    case Stat::kNotSupported:
      return "NFS3ERR_NOTSUPP";
  }
  return "NFS3ERR_?";
}

util::Status ToStatus(Stat s, const std::string& context) {
  std::string msg = context.empty() ? StatName(s) : context + ": " + StatName(s);
  switch (s) {
    case Stat::kOk:
      return util::OkStatus();
    case Stat::kNoEnt:
      return util::NotFound(msg);
    case Stat::kPerm:
    case Stat::kAccess:
    case Stat::kReadOnlyFs:
      return util::PermissionDenied(msg);
    case Stat::kExist:
      return util::AlreadyExists(msg);
    case Stat::kStale:
    case Stat::kBadHandle:
      return util::FailedPrecondition(msg);
    default:
      return util::InvalidArgument(msg);
  }
}

const char* ProcName(uint32_t proc) {
  switch (proc) {
    case kProcNull:
      return "NULL";
    case kProcGetAttr:
      return "GETATTR";
    case kProcSetAttr:
      return "SETATTR";
    case kProcLookup:
      return "LOOKUP";
    case kProcAccess:
      return "ACCESS";
    case kProcReadLink:
      return "READLINK";
    case kProcRead:
      return "READ";
    case kProcWrite:
      return "WRITE";
    case kProcCreate:
      return "CREATE";
    case kProcMkdir:
      return "MKDIR";
    case kProcSymlink:
      return "SYMLINK";
    case kProcRemove:
      return "REMOVE";
    case kProcRmdir:
      return "RMDIR";
    case kProcRename:
      return "RENAME";
    case kProcLink:
      return "LINK";
    case kProcReadDir:
      return "READDIR";
    case kProcFsStat:
      return "FSSTAT";
    case kProcCommit:
      return "COMMIT";
    default:
      return "?";
  }
}

void Fattr::Encode(xdr::Encoder* enc) const {
  enc->PutUint32(static_cast<uint32_t>(type));
  enc->PutUint32(mode);
  enc->PutUint32(nlink);
  enc->PutUint32(uid);
  enc->PutUint32(gid);
  enc->PutUint64(size);
  enc->PutUint64(used);
  enc->PutUint64(fsid);
  enc->PutUint64(fileid);
  enc->PutUint64(atime_ns);
  enc->PutUint64(mtime_ns);
  enc->PutUint64(ctime_ns);
  enc->PutUint64(lease_ns);
}

util::Result<Fattr> Fattr::Decode(xdr::Decoder* dec) {
  Fattr out;
  ASSIGN_OR_RETURN(uint32_t type_raw, dec->GetUint32());
  if (type_raw != 1 && type_raw != 2 && type_raw != 5) {
    return util::InvalidArgument("bad file type");
  }
  out.type = static_cast<FileType>(type_raw);
  ASSIGN_OR_RETURN(out.mode, dec->GetUint32());
  ASSIGN_OR_RETURN(out.nlink, dec->GetUint32());
  ASSIGN_OR_RETURN(out.uid, dec->GetUint32());
  ASSIGN_OR_RETURN(out.gid, dec->GetUint32());
  ASSIGN_OR_RETURN(out.size, dec->GetUint64());
  ASSIGN_OR_RETURN(out.used, dec->GetUint64());
  ASSIGN_OR_RETURN(out.fsid, dec->GetUint64());
  ASSIGN_OR_RETURN(out.fileid, dec->GetUint64());
  ASSIGN_OR_RETURN(out.atime_ns, dec->GetUint64());
  ASSIGN_OR_RETURN(out.mtime_ns, dec->GetUint64());
  ASSIGN_OR_RETURN(out.ctime_ns, dec->GetUint64());
  ASSIGN_OR_RETURN(out.lease_ns, dec->GetUint64());
  return out;
}

namespace {

template <typename T, typename Put>
void EncodeOptional(xdr::Encoder* enc, const std::optional<T>& v, Put put) {
  enc->PutBool(v.has_value());
  if (v.has_value()) {
    put(*v);
  }
}

}  // namespace

void Sattr::Encode(xdr::Encoder* enc) const {
  EncodeOptional(enc, mode, [enc](uint32_t v) { enc->PutUint32(v); });
  EncodeOptional(enc, uid, [enc](uint32_t v) { enc->PutUint32(v); });
  EncodeOptional(enc, gid, [enc](uint32_t v) { enc->PutUint32(v); });
  EncodeOptional(enc, size, [enc](uint64_t v) { enc->PutUint64(v); });
  enc->PutBool(touch_mtime);
}

util::Result<Sattr> Sattr::Decode(xdr::Decoder* dec) {
  Sattr out;
  ASSIGN_OR_RETURN(bool has_mode, dec->GetBool());
  if (has_mode) {
    ASSIGN_OR_RETURN(uint32_t v, dec->GetUint32());
    out.mode = v;
  }
  ASSIGN_OR_RETURN(bool has_uid, dec->GetBool());
  if (has_uid) {
    ASSIGN_OR_RETURN(uint32_t v, dec->GetUint32());
    out.uid = v;
  }
  ASSIGN_OR_RETURN(bool has_gid, dec->GetBool());
  if (has_gid) {
    ASSIGN_OR_RETURN(uint32_t v, dec->GetUint32());
    out.gid = v;
  }
  ASSIGN_OR_RETURN(bool has_size, dec->GetBool());
  if (has_size) {
    ASSIGN_OR_RETURN(uint64_t v, dec->GetUint64());
    out.size = v;
  }
  ASSIGN_OR_RETURN(out.touch_mtime, dec->GetBool());
  return out;
}

void Credentials::Encode(xdr::Encoder* enc) const {
  enc->PutUint32(uid);
  enc->PutUint32(static_cast<uint32_t>(gids.size()));
  for (uint32_t g : gids) {
    enc->PutUint32(g);
  }
}

util::Result<Credentials> Credentials::Decode(xdr::Decoder* dec) {
  Credentials out;
  ASSIGN_OR_RETURN(out.uid, dec->GetUint32());
  ASSIGN_OR_RETURN(uint32_t count, dec->GetUint32());
  if (count > 64) {
    return util::InvalidArgument("too many groups");
  }
  out.gids.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(uint32_t g, dec->GetUint32());
    out.gids.push_back(g);
  }
  return out;
}

void DirEntry::Encode(xdr::Encoder* enc) const {
  enc->PutUint64(fileid);
  enc->PutString(name);
  enc->PutUint64(cookie);
}

util::Result<DirEntry> DirEntry::Decode(xdr::Decoder* dec) {
  DirEntry out;
  ASSIGN_OR_RETURN(out.fileid, dec->GetUint64());
  ASSIGN_OR_RETURN(out.name, dec->GetString());
  ASSIGN_OR_RETURN(out.cookie, dec->GetUint64());
  return out;
}

}  // namespace nfs
