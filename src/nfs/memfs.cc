#include "src/nfs/memfs.h"

#include <algorithm>
#include <cassert>

namespace nfs {
namespace {

// Handle layout: fsid(8) || fileid(8) || generation(8) || secret(8).
// The trailing secret is what makes plain-NFS handles guessable on weak
// servers (paper §3.3); SFS encrypts the whole handle before exposing it.
void PutU64(util::Bytes* out, uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint64_t GetU64(const util::Bytes& b, size_t off) {
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) {
    v = (v << 8) | b[off + i];
  }
  return v;
}

// Inserts [start, end) into an extent map, merging overlapping or
// adjacent ranges so the map stays small under sequential writes.
void AddUnstableExtent(std::map<uint64_t, uint64_t>* extents, uint64_t start, uint64_t end) {
  auto it = extents->upper_bound(start);
  if (it != extents->begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) {
      it = prev;
    }
  }
  while (it != extents->end() && it->first <= end) {
    start = std::min(start, it->first);
    end = std::max(end, it->second);
    it = extents->erase(it);
  }
  (*extents)[start] = end;
}

}  // namespace

MemFs::MemFs(sim::Clock* clock, sim::Disk* disk, Options options)
    : clock_(clock), disk_(disk), options_(options) {
  Inode root;
  root.id = next_id_++;
  root.type = FileType::kDirectory;
  root.mode = 0777;  // World-writable export root, like a shared /tmp.
  root.nlink = 2;
  root.atime_ns = root.mtime_ns = root.ctime_ns = clock_->now_ns();
  root_id_ = root.id;
  inodes_[root.id] = std::move(root);
}

FileHandle MemFs::root_handle() const {
  auto it = inodes_.find(root_id_);
  assert(it != inodes_.end());
  return EncodeHandle(it->second);
}

MemFs::Inode* MemFs::FindInode(uint64_t id) {
  auto it = inodes_.find(id);
  return it == inodes_.end() ? nullptr : &it->second;
}

FileHandle MemFs::EncodeHandle(const Inode& inode) const {
  FileHandle fh;
  fh.reserve(kFileHandleSize);
  PutU64(&fh, options_.fsid);
  PutU64(&fh, inode.id);
  PutU64(&fh, inode.generation);
  PutU64(&fh, options_.handle_secret);
  return fh;
}

MemFs::Inode* MemFs::DecodeHandle(const FileHandle& fh) {
  if (fh.size() != kFileHandleSize) {
    return nullptr;
  }
  if (GetU64(fh, 0) != options_.fsid || GetU64(fh, 24) != options_.handle_secret) {
    return nullptr;
  }
  Inode* inode = FindInode(GetU64(fh, 8));
  if (inode == nullptr || inode->generation != GetU64(fh, 16)) {
    return nullptr;
  }
  return inode;
}

MemFs::Inode* MemFs::CreateInode(FileType type, uint32_t mode, const Credentials& cred) {
  Inode inode;
  inode.id = next_id_++;
  inode.type = type;
  inode.mode = mode & 07777;
  inode.uid = cred.uid;
  inode.gid = cred.gids.empty() ? cred.uid : cred.gids[0];
  inode.nlink = type == FileType::kDirectory ? 2 : 1;
  inode.atime_ns = inode.mtime_ns = inode.ctime_ns = clock_->now_ns();
  uint64_t id = inode.id;
  inodes_[id] = std::move(inode);
  return &inodes_[id];
}

bool MemFs::CheckAccess(const Inode& inode, const Credentials& cred, uint32_t want) const {
  if (cred.IsSuperuser()) {
    return true;
  }
  uint32_t shift;
  if (cred.uid == inode.uid) {
    shift = 6;
  } else if (cred.HasGid(inode.gid)) {
    shift = 3;
  } else {
    shift = 0;
  }
  uint32_t rwx = (inode.mode >> shift) & 7;
  uint32_t need = 0;
  if (want & (kAccessRead | kAccessLookup)) {
    need |= (want & kAccessRead) ? 4 : 0;
  }
  if (want & kAccessLookup) {
    need |= 1;  // Directory search is the execute bit.
  }
  if (want & (kAccessModify | kAccessExtend | kAccessDelete)) {
    need |= 2;
  }
  if (want & kAccessExecute) {
    need |= 1;
  }
  return (rwx & need) == need;
}

void MemFs::Touch(Inode* inode, bool data_changed) {
  uint64_t now = clock_->now_ns();
  inode->ctime_ns = now;
  if (data_changed) {
    inode->mtime_ns = now;
  }
  ++change_counter_;
}

bool MemFs::NameOk(const std::string& name) {
  if (name.empty() || name.size() > 255 || name == "." || name == "..") {
    return false;
  }
  return name.find('/') == std::string::npos;
}

Stat MemFs::GetAttr(const FileHandle& fh, Fattr* attr) {
  Inode* inode = DecodeHandle(fh);
  if (inode == nullptr) {
    return Stat::kStale;
  }
  attr->type = inode->type;
  attr->mode = inode->mode;
  attr->nlink = inode->nlink;
  attr->uid = inode->uid;
  attr->gid = inode->gid;
  attr->size = inode->type == FileType::kSymlink ? inode->symlink_target.size() : inode->size;
  attr->used = inode->chunks.size() * kBlockSize;
  attr->fsid = options_.fsid;
  attr->fileid = inode->id;
  attr->atime_ns = inode->atime_ns;
  attr->mtime_ns = inode->mtime_ns;
  attr->ctime_ns = inode->ctime_ns;
  attr->lease_ns = 0;
  return Stat::kOk;
}

Stat MemFs::SetAttr(const FileHandle& fh, const Credentials& cred, const Sattr& sattr,
                    Fattr* attr) {
  Inode* inode = DecodeHandle(fh);
  if (inode == nullptr) {
    return Stat::kStale;
  }
  if (options_.read_only) {
    return Stat::kReadOnlyFs;
  }
  // chown/chgrp: superuser only.  chmod: owner or superuser.  truncate:
  // write permission.
  if ((sattr.uid.has_value() || sattr.gid.has_value()) && !cred.IsSuperuser()) {
    return Stat::kPerm;
  }
  if (sattr.mode.has_value() && !cred.IsSuperuser() && cred.uid != inode->uid) {
    return Stat::kPerm;
  }
  if (sattr.size.has_value()) {
    if (inode->type != FileType::kRegular) {
      return Stat::kInval;
    }
    if (!CheckAccess(*inode, cred, kAccessModify)) {
      return Stat::kAccess;
    }
  }

  if (sattr.mode.has_value()) {
    inode->mode = *sattr.mode & 07777;
  }
  if (sattr.uid.has_value()) {
    inode->uid = *sattr.uid;
  }
  if (sattr.gid.has_value()) {
    inode->gid = *sattr.gid;
  }
  if (sattr.size.has_value()) {
    uint64_t new_size = *sattr.size;
    if (new_size < inode->size) {
      // Drop chunks beyond the new size.
      uint64_t first_dead_block = (new_size + kBlockSize - 1) / kBlockSize;
      inode->chunks.erase(inode->chunks.lower_bound(first_dead_block), inode->chunks.end());
      for (auto it = inode->cold_blocks.lower_bound(first_dead_block);
           it != inode->cold_blocks.end();) {
        it = inode->cold_blocks.erase(it);
      }
      // Zero the tail of the boundary chunk.
      uint64_t boundary = new_size / kBlockSize;
      auto it = inode->chunks.find(boundary);
      if (it != inode->chunks.end()) {
        std::fill(it->second.begin() + static_cast<long>(new_size % kBlockSize),
                  it->second.end(), 0);
      }
    }
    inode->size = new_size;
    disk_->ChargeMetaUpdate();
  }
  Touch(inode, sattr.size.has_value() || sattr.touch_mtime);
  return GetAttr(fh, attr);
}

Stat MemFs::Lookup(const FileHandle& dir, const std::string& name, const Credentials& cred,
                   FileHandle* out, Fattr* attr) {
  Inode* parent = DecodeHandle(dir);
  if (parent == nullptr) {
    return Stat::kStale;
  }
  if (parent->type != FileType::kDirectory) {
    return Stat::kNotDir;
  }
  if (!CheckAccess(*parent, cred, kAccessLookup)) {
    return Stat::kAccess;
  }
  auto it = parent->children.find(name);
  if (it == parent->children.end()) {
    return Stat::kNoEnt;
  }
  Inode* child = FindInode(it->second);
  assert(child != nullptr);
  *out = EncodeHandle(*child);
  return GetAttr(*out, attr);
}

Stat MemFs::Access(const FileHandle& fh, const Credentials& cred, uint32_t want,
                   uint32_t* allowed) {
  Inode* inode = DecodeHandle(fh);
  if (inode == nullptr) {
    return Stat::kStale;
  }
  *allowed = 0;
  for (uint32_t bit :
       {kAccessRead, kAccessLookup, kAccessModify, kAccessExtend, kAccessDelete,
        kAccessExecute}) {
    if ((want & bit) && CheckAccess(*inode, cred, bit)) {
      *allowed |= bit;
    }
  }
  if (options_.read_only) {
    *allowed &= ~(kAccessModify | kAccessExtend | kAccessDelete);
  }
  return Stat::kOk;
}

Stat MemFs::ReadLink(const FileHandle& fh, const Credentials& cred, std::string* target) {
  (void)cred;  // Readlink requires no permission bits in POSIX.
  Inode* inode = DecodeHandle(fh);
  if (inode == nullptr) {
    return Stat::kStale;
  }
  if (inode->type != FileType::kSymlink) {
    return Stat::kInval;
  }
  *target = inode->symlink_target;
  return Stat::kOk;
}

Stat MemFs::Read(const FileHandle& fh, const Credentials& cred, uint64_t offset,
                 uint32_t count, util::Bytes* data, bool* eof) {
  Inode* inode = DecodeHandle(fh);
  if (inode == nullptr) {
    return Stat::kStale;
  }
  if (inode->type == FileType::kDirectory) {
    return Stat::kIsDir;
  }
  if (inode->type != FileType::kRegular) {
    return Stat::kInval;
  }
  if (!CheckAccess(*inode, cred, kAccessRead)) {
    return Stat::kAccess;
  }

  data->clear();
  if (offset >= inode->size) {
    *eof = true;
    return Stat::kOk;
  }
  uint64_t len = std::min<uint64_t>(count, inode->size - offset);
  data->resize(len, 0);
  uint64_t first_block = offset / kBlockSize;
  uint64_t last_block = (offset + len - 1) / kBlockSize;
  for (uint64_t block = first_block; block <= last_block; ++block) {
    // Cold blocks charge the disk model once, then join the buffer cache.
    auto cold = inode->cold_blocks.find(block);
    if (cold != inode->cold_blocks.end()) {
      disk_->ChargeRead(inode->id, block * kBlockSize, kBlockSize);
      inode->cold_blocks.erase(cold);
    }
    auto chunk = inode->chunks.find(block);
    if (chunk == inode->chunks.end()) {
      continue;  // Hole: zeros.
    }
    uint64_t block_start = block * kBlockSize;
    uint64_t copy_from = std::max(offset, block_start);
    uint64_t copy_to = std::min(offset + len, block_start + kBlockSize);
    std::copy(chunk->second.begin() + static_cast<long>(copy_from - block_start),
              chunk->second.begin() + static_cast<long>(copy_to - block_start),
              data->begin() + static_cast<long>(copy_from - offset));
  }
  inode->atime_ns = clock_->now_ns();
  *eof = offset + len >= inode->size;
  return Stat::kOk;
}

Stat MemFs::Write(const FileHandle& fh, const Credentials& cred, uint64_t offset,
                  const util::Bytes& data, bool stable, Fattr* attr) {
  Inode* inode = DecodeHandle(fh);
  if (inode == nullptr) {
    return Stat::kStale;
  }
  if (options_.read_only) {
    return Stat::kReadOnlyFs;
  }
  if (inode->type == FileType::kDirectory) {
    return Stat::kIsDir;
  }
  if (inode->type != FileType::kRegular) {
    return Stat::kInval;
  }
  if (!CheckAccess(*inode, cred, kAccessModify)) {
    return Stat::kAccess;
  }

  for (uint64_t pos = 0; pos < data.size();) {
    uint64_t abs = offset + pos;
    uint64_t block = abs / kBlockSize;
    uint64_t block_off = abs % kBlockSize;
    uint64_t n = std::min<uint64_t>(kBlockSize - block_off, data.size() - pos);
    auto& chunk = inode->chunks[block];
    if (chunk.empty()) {
      chunk.resize(kBlockSize, 0);
    }
    std::copy(data.begin() + static_cast<long>(pos),
              data.begin() + static_cast<long>(pos + n),
              chunk.begin() + static_cast<long>(block_off));
    inode->cold_blocks.erase(block);  // Freshly written data is cached.
    pos += n;
  }
  inode->size = std::max(inode->size, offset + data.size());
  disk_->BufferWrite(data.size());
  if (stable) {
    // The disk model's commit flushes everything buffered for this fs,
    // so a stable write stabilizes the inode's earlier unstable data too.
    disk_->ChargeCommit();
    inode->unstable_extents.clear();
  } else if (!data.empty()) {
    AddUnstableExtent(&inode->unstable_extents, offset, offset + data.size());
  }
  ++writes_applied_;
  Touch(inode, /*data_changed=*/true);
  return GetAttr(fh, attr);
}

Stat MemFs::Create(const FileHandle& dir, const std::string& name, const Credentials& cred,
                   const Sattr& sattr, FileHandle* out, Fattr* attr) {
  Inode* parent = DecodeHandle(dir);
  if (parent == nullptr) {
    return Stat::kStale;
  }
  if (options_.read_only) {
    return Stat::kReadOnlyFs;
  }
  if (parent->type != FileType::kDirectory) {
    return Stat::kNotDir;
  }
  if (!NameOk(name)) {
    return name.size() > 255 ? Stat::kNameTooLong : Stat::kInval;
  }
  if (!CheckAccess(*parent, cred, kAccessModify)) {
    return Stat::kAccess;
  }
  if (parent->children.count(name) != 0) {
    return Stat::kExist;
  }
  Inode* child = CreateInode(FileType::kRegular, sattr.mode.value_or(0644), cred);
  parent = DecodeHandle(dir);  // CreateInode may rehash the inode table.
  parent->children[name] = child->id;
  ++creates_applied_;
  disk_->ChargeMetaUpdate();
  Touch(parent, /*data_changed=*/true);
  *out = EncodeHandle(*child);
  return GetAttr(*out, attr);
}

Stat MemFs::Mkdir(const FileHandle& dir, const std::string& name, const Credentials& cred,
                  uint32_t mode, FileHandle* out, Fattr* attr) {
  Inode* parent = DecodeHandle(dir);
  if (parent == nullptr) {
    return Stat::kStale;
  }
  if (options_.read_only) {
    return Stat::kReadOnlyFs;
  }
  if (parent->type != FileType::kDirectory) {
    return Stat::kNotDir;
  }
  if (!NameOk(name)) {
    return name.size() > 255 ? Stat::kNameTooLong : Stat::kInval;
  }
  if (!CheckAccess(*parent, cred, kAccessModify)) {
    return Stat::kAccess;
  }
  if (parent->children.count(name) != 0) {
    return Stat::kExist;
  }
  Inode* child = CreateInode(FileType::kDirectory, mode, cred);
  parent = DecodeHandle(dir);
  parent->children[name] = child->id;
  ++parent->nlink;
  disk_->ChargeMetaUpdate();
  Touch(parent, /*data_changed=*/true);
  *out = EncodeHandle(*child);
  return GetAttr(*out, attr);
}

Stat MemFs::Symlink(const FileHandle& dir, const std::string& name, const std::string& target,
                    const Credentials& cred, FileHandle* out, Fattr* attr) {
  Inode* parent = DecodeHandle(dir);
  if (parent == nullptr) {
    return Stat::kStale;
  }
  if (options_.read_only) {
    return Stat::kReadOnlyFs;
  }
  if (parent->type != FileType::kDirectory) {
    return Stat::kNotDir;
  }
  if (!NameOk(name) || target.empty() || target.size() > 1024) {
    return Stat::kInval;
  }
  if (!CheckAccess(*parent, cred, kAccessModify)) {
    return Stat::kAccess;
  }
  if (parent->children.count(name) != 0) {
    return Stat::kExist;
  }
  Inode* child = CreateInode(FileType::kSymlink, 0777, cred);
  child->symlink_target = target;
  parent = DecodeHandle(dir);
  parent->children[name] = child->id;
  disk_->ChargeMetaUpdate();
  Touch(parent, /*data_changed=*/true);
  *out = EncodeHandle(*child);
  return GetAttr(*out, attr);
}

Stat MemFs::RemoveCommon(const FileHandle& dir, const std::string& name,
                         const Credentials& cred, bool want_dir) {
  Inode* parent = DecodeHandle(dir);
  if (parent == nullptr) {
    return Stat::kStale;
  }
  if (options_.read_only) {
    return Stat::kReadOnlyFs;
  }
  if (parent->type != FileType::kDirectory) {
    return Stat::kNotDir;
  }
  if (!CheckAccess(*parent, cred, kAccessModify)) {
    return Stat::kAccess;
  }
  auto it = parent->children.find(name);
  if (it == parent->children.end()) {
    return Stat::kNoEnt;
  }
  Inode* victim = FindInode(it->second);
  assert(victim != nullptr);
  if (want_dir) {
    if (victim->type != FileType::kDirectory) {
      return Stat::kNotDir;
    }
    if (!victim->children.empty()) {
      return Stat::kNotEmpty;
    }
    --parent->nlink;
  } else if (victim->type == FileType::kDirectory) {
    return Stat::kIsDir;
  }
  uint64_t victim_id = it->second;
  parent->children.erase(it);
  ++removes_applied_;
  // Hard links: the inode survives until its last name goes away.
  if (victim->type == FileType::kDirectory || --victim->nlink == 0) {
    inodes_.erase(victim_id);
  } else {
    Touch(victim, /*data_changed=*/false);
  }
  disk_->ChargeMetaUpdate();
  Touch(DecodeHandle(dir), /*data_changed=*/true);
  return Stat::kOk;
}

Stat MemFs::Remove(const FileHandle& dir, const std::string& name, const Credentials& cred) {
  return RemoveCommon(dir, name, cred, /*want_dir=*/false);
}

Stat MemFs::Rmdir(const FileHandle& dir, const std::string& name, const Credentials& cred) {
  return RemoveCommon(dir, name, cred, /*want_dir=*/true);
}

Stat MemFs::Rename(const FileHandle& from_dir, const std::string& from_name,
                   const FileHandle& to_dir, const std::string& to_name,
                   const Credentials& cred) {
  Inode* src = DecodeHandle(from_dir);
  Inode* dst = DecodeHandle(to_dir);
  if (src == nullptr || dst == nullptr) {
    return Stat::kStale;
  }
  if (options_.read_only) {
    return Stat::kReadOnlyFs;
  }
  if (src->type != FileType::kDirectory || dst->type != FileType::kDirectory) {
    return Stat::kNotDir;
  }
  if (!NameOk(to_name)) {
    return Stat::kInval;
  }
  if (!CheckAccess(*src, cred, kAccessModify) || !CheckAccess(*dst, cred, kAccessModify)) {
    return Stat::kAccess;
  }
  auto it = src->children.find(from_name);
  if (it == src->children.end()) {
    return Stat::kNoEnt;
  }
  uint64_t moving = it->second;
  auto existing = dst->children.find(to_name);
  if (existing != dst->children.end() && existing->second == moving) {
    return Stat::kOk;  // Renaming a file onto itself is a no-op (POSIX).
  }
  if (existing != dst->children.end()) {
    Inode* old = FindInode(existing->second);
    if (old->type == FileType::kDirectory) {
      if (!old->children.empty()) {
        return Stat::kNotEmpty;
      }
      --dst->nlink;
      inodes_.erase(existing->second);
    } else if (--old->nlink == 0) {
      inodes_.erase(existing->second);
    }
  }
  src->children.erase(from_name);
  dst = DecodeHandle(to_dir);
  src = DecodeHandle(from_dir);
  dst->children[to_name] = moving;
  Inode* moved = FindInode(moving);
  if (moved->type == FileType::kDirectory && src != dst) {
    --src->nlink;
    ++dst->nlink;
  }
  disk_->ChargeMetaUpdate();
  Touch(src, /*data_changed=*/true);
  if (src != dst) {
    Touch(dst, /*data_changed=*/true);
  }
  return Stat::kOk;
}

Stat MemFs::Link(const FileHandle& target, const FileHandle& dir, const std::string& name,
                 const Credentials& cred) {
  Inode* inode = DecodeHandle(target);
  Inode* parent = DecodeHandle(dir);
  if (inode == nullptr || parent == nullptr) {
    return Stat::kStale;
  }
  if (options_.read_only) {
    return Stat::kReadOnlyFs;
  }
  if (inode->type == FileType::kDirectory) {
    return Stat::kIsDir;  // Hard links to directories are forbidden.
  }
  if (parent->type != FileType::kDirectory) {
    return Stat::kNotDir;
  }
  if (!NameOk(name)) {
    return name.size() > 255 ? Stat::kNameTooLong : Stat::kInval;
  }
  if (!CheckAccess(*parent, cred, kAccessModify)) {
    return Stat::kAccess;
  }
  if (parent->children.count(name) != 0) {
    return Stat::kExist;
  }
  parent->children[name] = inode->id;
  ++inode->nlink;
  disk_->ChargeMetaUpdate();
  Touch(parent, /*data_changed=*/true);
  Touch(inode, /*data_changed=*/false);
  return Stat::kOk;
}

Stat MemFs::ReadDir(const FileHandle& dir, const Credentials& cred, uint64_t cookie,
                    uint32_t max_entries, std::vector<DirEntry>* entries, bool* eof) {
  Inode* parent = DecodeHandle(dir);
  if (parent == nullptr) {
    return Stat::kStale;
  }
  if (parent->type != FileType::kDirectory) {
    return Stat::kNotDir;
  }
  if (!CheckAccess(*parent, cred, kAccessRead)) {
    return Stat::kAccess;
  }
  entries->clear();
  uint64_t index = 0;
  *eof = true;
  for (const auto& [name, id] : parent->children) {
    ++index;
    if (index <= cookie) {
      continue;
    }
    if (entries->size() >= max_entries) {
      *eof = false;
      break;
    }
    entries->push_back(DirEntry{id, name, index});
  }
  parent->atime_ns = clock_->now_ns();
  return Stat::kOk;
}

Stat MemFs::FsStat(const FileHandle& fh, uint64_t* total_bytes, uint64_t* used_bytes) {
  if (DecodeHandle(fh) == nullptr) {
    return Stat::kStale;
  }
  uint64_t used = 0;
  for (const auto& [id, inode] : inodes_) {
    used += inode.chunks.size() * kBlockSize;
  }
  *total_bytes = 9ull << 30;  // The testbed's 9 GB SCSI disk.
  *used_bytes = used;
  return Stat::kOk;
}

Stat MemFs::Commit(const FileHandle& fh) {
  Inode* inode = DecodeHandle(fh);
  if (inode == nullptr) {
    return Stat::kStale;
  }
  disk_->ChargeCommit();
  inode->unstable_extents.clear();
  ++commits_applied_;
  return Stat::kOk;
}

Stat MemFs::AddColdFile(const FileHandle& dir, const std::string& name,
                        const util::Bytes& content, uint32_t mode, uint32_t uid) {
  Credentials cred = Credentials::User(uid);
  cred.uid = 0;  // Setup runs as root; ownership set below.
  Sattr sattr;
  sattr.mode = mode;
  FileHandle fh;
  Fattr attr;
  Stat s = Create(dir, name, cred, sattr, &fh, &attr);
  if (s != Stat::kOk) {
    return s;
  }
  s = Write(fh, cred, 0, content, /*stable=*/false, &attr);
  if (s != Stat::kOk) {
    return s;
  }
  Inode* inode = DecodeHandle(fh);
  inode->uid = uid;
  // Everything just written becomes "on disk, cold" (and stable).
  for (const auto& [block, chunk] : inode->chunks) {
    inode->cold_blocks.insert(block);
  }
  inode->unstable_extents.clear();
  disk_->DiscardDirty();  // Setup writes are free.
  return Stat::kOk;
}

void MemFs::DropCaches() {
  for (auto& [id, inode] : inodes_) {
    for (const auto& [block, chunk] : inode.chunks) {
      inode.cold_blocks.insert(block);
    }
  }
  disk_->DiscardDirty();
}

void MemFs::InvalidateHandles(const FileHandle& fh) {
  Inode* inode = DecodeHandle(fh);
  if (inode != nullptr) {
    ++inode->generation;
  }
}

void MemFs::SimulateRestart() {
  for (auto& [id, inode] : inodes_) {
    for (const auto& [start, end] : inode.unstable_extents) {
      // Volatile data never reached the platter: readers of this range
      // now see zeros (holes read as zeros too, so zeroing is exact).
      for (uint64_t pos = start; pos < end;) {
        uint64_t block = pos / kBlockSize;
        uint64_t block_off = pos % kBlockSize;
        uint64_t n = std::min(kBlockSize - block_off, end - pos);
        auto chunk = inode.chunks.find(block);
        if (chunk != inode.chunks.end()) {
          std::fill(chunk->second.begin() + static_cast<long>(block_off),
                    chunk->second.begin() + static_cast<long>(block_off + n), 0);
        }
        pos += n;
      }
    }
    inode.unstable_extents.clear();
    // The buffer cache does not survive a reboot.
    for (const auto& [block, chunk] : inode.chunks) {
      inode.cold_blocks.insert(block);
    }
  }
  disk_->DiscardDirty();
  // New boot instance, new verifier (deterministic ratchet — the sim has
  // no wall clock to mix in, and reproducibility is a feature here).
  write_verf_ = write_verf_ * 6364136223846793005ull + 1442695040888963407ull;
  ++restarts_;
  ++change_counter_;
}

uint64_t MemFs::unstable_bytes() const {
  uint64_t total = 0;
  for (const auto& [id, inode] : inodes_) {
    for (const auto& [start, end] : inode.unstable_extents) {
      total += end - start;
    }
  }
  return total;
}

}  // namespace nfs
