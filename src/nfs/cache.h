// Client-side attribute / access / name / data caching.
//
// The paper's SFS read-write protocol extends NFS 3 "to reduce the number
// of NFS GETATTR and ACCESS RPCs sent over the wire" (§3.3): every
// attribute carries a lease, and the server calls back to invalidate
// entries before the lease expires.  Plain NFS 3 clients instead use a
// fixed attribute timeout.  CachingFs implements both disciplines behind
// one switch, which is also what the caching ablation benchmark toggles
// (SFS without enhanced caching runs MAB 0.7 s slower, §4.3).
#ifndef SFS_SRC_NFS_CACHE_H_
#define SFS_SRC_NFS_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>

#include "src/nfs/api.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/sim/clock.h"
#include "src/util/bytes.h"

namespace nfs {

struct CacheOptions {
  // Plain-NFS attribute timeout (FreeBSD-style acregmin neighborhood).
  uint64_t attr_timeout_ns = 5'000'000'000;
  // Lease mode: entries live until the server-granted lease expires or
  // the server sends an invalidation callback.
  bool use_leases = false;
  // Whole-file, sequential-fill data cache (the buffer cache analog).
  bool enable_data_cache = true;
  uint64_t data_cache_file_limit = 1 << 20;
  uint64_t data_cache_total_limit = 64 << 20;
  // Pipelined read-ahead: on a sequential-fill read miss, prefetch up to
  // this many further chunks of the same size through the async backend
  // (0 disables; requires set_async_ops).
  uint32_t read_ahead_chunks = 0;
  // Write-behind (NFS3 safe asynchronous writes): unstable application
  // writes are buffered as coalesced dirty extents and pushed as
  // WRITE(UNSTABLE) batches at a flush point — Close, Commit, an
  // overlapping read, or memory pressure — followed by one COMMIT per
  // file handle whose verifier decides whether anything must be
  // replayed.  Off: every write is a synchronous write-through RPC.
  bool write_behind = false;
  // Backpressure bound on buffered dirty + unstable bytes across all
  // files; exceeding it forces a full flush+commit.
  uint64_t write_behind_limit_bytes = 4 << 20;
  // Small-file close fast path (RFC 1813 stable writes): when a commit
  // point finds exactly one dirty extent smaller than this, with no
  // unstable backlog to fence, it goes out as a single WRITE(FILE_SYNC)
  // and the trailing COMMIT round trip is skipped entirely.  Durability
  // is the server's write, not the verifier protocol, so no replay
  // state is kept.  Sized to one wire write: anything that fills a full
  // 32 KB gather buffer takes the pipelined WRITE(UNSTABLE)+COMMIT path.
  uint64_t stable_write_max_bytes = 32768;
  // Close-to-open consistency: Open() revalidates attributes against
  // the server (dropping stale cached data) unless they were fetched at
  // this exact virtual instant; Close() flushes and commits.
  bool close_to_open = false;
  // Receives per-op "cache.*" spans while span tracing is enabled;
  // nullptr selects obs::Registry::Default().
  obs::Registry* registry = nullptr;
};

class CachingFs : public FileSystemApi {
 public:
  CachingFs(FileSystemApi* backend, sim::Clock* clock, CacheOptions options)
      : backend_(backend),
        clock_(clock),
        options_(options),
        spans_(&(options_.registry != nullptr ? options_.registry
                                              : obs::Registry::Default())
                    ->spans()) {
    obs::Registry* reg =
        options_.registry != nullptr ? options_.registry : obs::Registry::Default();
    g_dirty_bytes_ = reg->GetGauge("nfs.cache.dirty_bytes");
    m_commit_calls_ = reg->GetCounter("commit.calls");
    m_commit_batched_writes_ = reg->GetCounter("commit.batched_writes");
    m_commit_replays_ = reg->GetCounter("commit.replays");
    m_commit_stable_writes_ = reg->GetCounter("commit.stable_writes");
  }

  Stat GetAttr(const FileHandle& fh, Fattr* attr) override;
  Stat SetAttr(const FileHandle& fh, const Credentials& cred, const Sattr& sattr,
               Fattr* attr) override;
  Stat Lookup(const FileHandle& dir, const std::string& name, const Credentials& cred,
              FileHandle* out, Fattr* attr) override;
  Stat Access(const FileHandle& fh, const Credentials& cred, uint32_t want,
              uint32_t* allowed) override;
  Stat ReadLink(const FileHandle& fh, const Credentials& cred, std::string* target) override;
  Stat Read(const FileHandle& fh, const Credentials& cred, uint64_t offset, uint32_t count,
            util::Bytes* data, bool* eof) override;
  Stat Write(const FileHandle& fh, const Credentials& cred, uint64_t offset,
             const util::Bytes& data, bool stable, Fattr* attr) override;
  Stat Create(const FileHandle& dir, const std::string& name, const Credentials& cred,
              const Sattr& sattr, FileHandle* out, Fattr* attr) override;
  Stat Mkdir(const FileHandle& dir, const std::string& name, const Credentials& cred,
             uint32_t mode, FileHandle* out, Fattr* attr) override;
  Stat Symlink(const FileHandle& dir, const std::string& name, const std::string& target,
               const Credentials& cred, FileHandle* out, Fattr* attr) override;
  Stat Remove(const FileHandle& dir, const std::string& name, const Credentials& cred) override;
  Stat Rmdir(const FileHandle& dir, const std::string& name, const Credentials& cred) override;
  Stat Rename(const FileHandle& from_dir, const std::string& from_name,
              const FileHandle& to_dir, const std::string& to_name,
              const Credentials& cred) override;
  Stat Link(const FileHandle& target, const FileHandle& dir, const std::string& name,
            const Credentials& cred) override;
  Stat ReadDir(const FileHandle& dir, const Credentials& cred, uint64_t cookie,
               uint32_t max_entries, std::vector<DirEntry>* entries, bool* eof) override;
  Stat FsStat(const FileHandle& fh, uint64_t* total_bytes, uint64_t* used_bytes) override;
  Stat Commit(const FileHandle& fh) override;
  uint64_t WriteVerf() const override { return backend_->WriteVerf(); }

  // Close-to-open consistency (see CacheOptions::close_to_open).
  Stat Open(const FileHandle& fh, const Credentials& cred) override;
  Stat Close(const FileHandle& fh, const Credentials& cred) override;

  // Server-initiated lease callback (paper §3.3: "the server can call
  // back to the client to invalidate entries before the lease expires";
  // no acknowledgement, so no time is charged here).
  void InvalidateHandle(const FileHandle& fh);
  void InvalidateAll();

  // Installs the asynchronous backend surface for read-ahead and
  // prefetch (typically the same NfsClient as `backend`, wired to a
  // pipelined channel).  Completions run while later synchronous calls
  // pump that channel and re-validate the cache state before filling.
  void set_async_ops(AsyncFileOps* ops) { async_ops_ = ops; }

  // Batched name prefetch: one async LOOKUP per not-fresh name; replies
  // warm the name/attr caches while the caller's own traffic proceeds.
  void PrefetchLookups(const FileHandle& dir, const std::vector<std::string>& names,
                       const Credentials& cred);
  // Batched attribute refresh (async GETATTR per stale handle).
  void PrefetchAttrs(const std::vector<FileHandle>& handles);

  // Cache-effectiveness counters.
  uint64_t attr_hits() const { return attr_hits_; }
  uint64_t attr_misses() const { return attr_misses_; }
  uint64_t access_hits() const { return access_hits_; }
  uint64_t data_hits() const { return data_hits_; }
  // Read-ahead / prefetch instrumentation.
  uint64_t read_aheads_issued() const { return read_aheads_issued_; }
  uint64_t read_ahead_fills() const { return read_ahead_fills_; }
  uint64_t prefetches_issued() const { return prefetches_issued_; }
  // Write-behind instrumentation.
  uint64_t dirty_bytes() const { return dirty_bytes_ + unstable_bytes_; }
  uint64_t flushes() const { return flushes_; }
  uint64_t commit_replays() const { return commit_replays_; }
  uint64_t open_revalidations() const { return open_revalidations_; }

 private:
  struct AttrEntry {
    Fattr attr;
    uint64_t expiry_ns = 0;
    // Provenance for close-to-open revalidation: attributes that came
    // from a server reply at this exact virtual instant need no second
    // GETATTR on Open; synthesized (write-behind) ones always do once
    // the local dirty data is gone.
    uint64_t fetched_ns = 0;
    bool from_server = false;
  };
  struct NameEntry {
    FileHandle fh;
    uint64_t expiry_ns = 0;
  };
  struct AccessEntry {
    uint32_t want = 0;
    uint32_t allowed = 0;
    uint64_t expiry_ns = 0;
  };
  struct DataEntry {
    uint64_t mtime_ns = 0;  // Validator.
    util::Bytes content;    // Sequential prefix of the file.
  };
  // One unstable WRITE in flight (or completed, awaiting the COMMIT
  // verdict).  Heap-allocated and shared with the completion callback so
  // a late reply — after a replay round already moved the extent back to
  // dirty — lands harmlessly in an orphaned object.
  struct PendingExtent {
    util::Bytes data;
    uint64_t seq = 0;  // Issue order; replays must rebuild in this order.
    bool acked = false;
    Stat stat = Stat::kOk;
    uint64_t verf = 0;
  };
  // Per-file write-behind state: coalesced dirty extents not yet sent,
  // and unstable extents sent but not yet known stable.
  struct WriteState {
    FileHandle fh;
    Credentials cred;
    std::map<uint64_t, util::Bytes> dirty;  // offset -> bytes, disjoint
    std::map<uint64_t, std::shared_ptr<PendingExtent>> unstable;
  };

  static std::string Key(const FileHandle& fh) { return util::StringOf(fh); }
  uint64_t ExpiryFor(const Fattr& attr) const;
  void StoreAttr(const FileHandle& fh, const Fattr& attr);
  void ForgetData(const std::string& key);
  void ForgetParentAttrs(const FileHandle& dir);
  void EvictDataIfNeeded();
  // Issues async reads past the cached prefix after a sequential fill.
  void MaybeReadAhead(const FileHandle& fh, const Credentials& cred, uint32_t count);

  // --- Write-behind engine ---
  // Buffers one unstable write locally, synthesizing post-op attributes.
  Stat BufferWrite(const FileHandle& fh, const Credentials& cred, uint64_t offset,
                   const util::Bytes& data, Fattr* attr);
  // Inserts into st->dirty, coalescing overlap/adjacency (new data wins).
  void AddDirtyExtent(WriteState* st, uint64_t offset, const util::Bytes& data);
  // Sends every dirty extent of the file as WRITE(UNSTABLE); with
  // allow_async, through the pipelined window.
  Stat SendDirty(const std::string& key, bool allow_async);
  // Flushes the file synchronously without committing (read/getattr
  // barriers: the server must observe buffered bytes first).
  Stat FlushForRead(const FileHandle& fh);
  // Flush + COMMIT + verifier check; re-sends until every extent is
  // confirmed stable under the verifier the COMMIT returned.
  Stat CommitPipeline(const FileHandle& fh);
  // Flushes and commits every file with buffered state (backpressure).
  Stat FlushAllFiles();
  void DropWriteState(const std::string& key);
  bool HasBufferedWrites(const std::string& key) const;
  void PublishDirtyGauge() {
    g_dirty_bytes_->Set(static_cast<int64_t>(dirty_bytes_ + unstable_bytes_));
  }

  FileSystemApi* backend_;
  sim::Clock* clock_;
  CacheOptions options_;
  obs::SpanCollector* spans_;
  AsyncFileOps* async_ops_ = nullptr;

  std::map<std::string, AttrEntry> attr_cache_;
  std::map<std::pair<std::string, std::string>, NameEntry> name_cache_;
  std::map<std::pair<std::string, uint32_t>, AccessEntry> access_cache_;
  std::map<std::string, DataEntry> data_cache_;
  uint64_t data_cache_bytes_ = 0;

  // Read-ahead chunks in flight, keyed by (file key, offset); guards
  // against duplicate issues while a chunk's reply is pending.
  std::set<std::pair<std::string, uint64_t>> read_ahead_inflight_;

  uint64_t attr_hits_ = 0;
  uint64_t attr_misses_ = 0;
  uint64_t access_hits_ = 0;
  uint64_t data_hits_ = 0;
  uint64_t read_aheads_issued_ = 0;
  uint64_t read_ahead_fills_ = 0;
  uint64_t prefetches_issued_ = 0;

  // Write-behind state (all zero / empty unless options_.write_behind).
  std::map<std::string, WriteState> write_state_;
  uint64_t write_seq_ = 0;       // Monotonic WRITE issue counter.
  uint64_t dirty_bytes_ = 0;     // Sum of write_state_[*].dirty sizes.
  uint64_t unstable_bytes_ = 0;  // Sum of write_state_[*].unstable sizes.
  uint64_t flushes_ = 0;
  uint64_t commit_replays_ = 0;
  uint64_t open_revalidations_ = 0;
  obs::Gauge* g_dirty_bytes_ = nullptr;  // First-class gauge: rises and falls.
  obs::Counter* m_commit_calls_ = nullptr;
  obs::Counter* m_commit_batched_writes_ = nullptr;
  obs::Counter* m_commit_replays_ = nullptr;
  obs::Counter* m_commit_stable_writes_ = nullptr;
};

}  // namespace nfs

#endif  // SFS_SRC_NFS_CACHE_H_
