// Client-side attribute / access / name / data caching.
//
// The paper's SFS read-write protocol extends NFS 3 "to reduce the number
// of NFS GETATTR and ACCESS RPCs sent over the wire" (§3.3): every
// attribute carries a lease, and the server calls back to invalidate
// entries before the lease expires.  Plain NFS 3 clients instead use a
// fixed attribute timeout.  CachingFs implements both disciplines behind
// one switch, which is also what the caching ablation benchmark toggles
// (SFS without enhanced caching runs MAB 0.7 s slower, §4.3).
#ifndef SFS_SRC_NFS_CACHE_H_
#define SFS_SRC_NFS_CACHE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "src/nfs/api.h"
#include "src/obs/span.h"
#include "src/sim/clock.h"
#include "src/util/bytes.h"

namespace nfs {

struct CacheOptions {
  // Plain-NFS attribute timeout (FreeBSD-style acregmin neighborhood).
  uint64_t attr_timeout_ns = 5'000'000'000;
  // Lease mode: entries live until the server-granted lease expires or
  // the server sends an invalidation callback.
  bool use_leases = false;
  // Whole-file, sequential-fill data cache (the buffer cache analog).
  bool enable_data_cache = true;
  uint64_t data_cache_file_limit = 1 << 20;
  uint64_t data_cache_total_limit = 64 << 20;
  // Pipelined read-ahead: on a sequential-fill read miss, prefetch up to
  // this many further chunks of the same size through the async backend
  // (0 disables; requires set_async_ops).
  uint32_t read_ahead_chunks = 0;
  // Receives per-op "cache.*" spans while span tracing is enabled;
  // nullptr selects obs::Registry::Default().
  obs::Registry* registry = nullptr;
};

class CachingFs : public FileSystemApi {
 public:
  CachingFs(FileSystemApi* backend, sim::Clock* clock, CacheOptions options)
      : backend_(backend),
        clock_(clock),
        options_(options),
        spans_(&(options_.registry != nullptr ? options_.registry
                                              : obs::Registry::Default())
                    ->spans()) {}

  Stat GetAttr(const FileHandle& fh, Fattr* attr) override;
  Stat SetAttr(const FileHandle& fh, const Credentials& cred, const Sattr& sattr,
               Fattr* attr) override;
  Stat Lookup(const FileHandle& dir, const std::string& name, const Credentials& cred,
              FileHandle* out, Fattr* attr) override;
  Stat Access(const FileHandle& fh, const Credentials& cred, uint32_t want,
              uint32_t* allowed) override;
  Stat ReadLink(const FileHandle& fh, const Credentials& cred, std::string* target) override;
  Stat Read(const FileHandle& fh, const Credentials& cred, uint64_t offset, uint32_t count,
            util::Bytes* data, bool* eof) override;
  Stat Write(const FileHandle& fh, const Credentials& cred, uint64_t offset,
             const util::Bytes& data, bool stable, Fattr* attr) override;
  Stat Create(const FileHandle& dir, const std::string& name, const Credentials& cred,
              const Sattr& sattr, FileHandle* out, Fattr* attr) override;
  Stat Mkdir(const FileHandle& dir, const std::string& name, const Credentials& cred,
             uint32_t mode, FileHandle* out, Fattr* attr) override;
  Stat Symlink(const FileHandle& dir, const std::string& name, const std::string& target,
               const Credentials& cred, FileHandle* out, Fattr* attr) override;
  Stat Remove(const FileHandle& dir, const std::string& name, const Credentials& cred) override;
  Stat Rmdir(const FileHandle& dir, const std::string& name, const Credentials& cred) override;
  Stat Rename(const FileHandle& from_dir, const std::string& from_name,
              const FileHandle& to_dir, const std::string& to_name,
              const Credentials& cred) override;
  Stat Link(const FileHandle& target, const FileHandle& dir, const std::string& name,
            const Credentials& cred) override;
  Stat ReadDir(const FileHandle& dir, const Credentials& cred, uint64_t cookie,
               uint32_t max_entries, std::vector<DirEntry>* entries, bool* eof) override;
  Stat FsStat(const FileHandle& fh, uint64_t* total_bytes, uint64_t* used_bytes) override;
  Stat Commit(const FileHandle& fh) override;

  // Server-initiated lease callback (paper §3.3: "the server can call
  // back to the client to invalidate entries before the lease expires";
  // no acknowledgement, so no time is charged here).
  void InvalidateHandle(const FileHandle& fh);
  void InvalidateAll();

  // Installs the asynchronous backend surface for read-ahead and
  // prefetch (typically the same NfsClient as `backend`, wired to a
  // pipelined channel).  Completions run while later synchronous calls
  // pump that channel and re-validate the cache state before filling.
  void set_async_ops(AsyncFileOps* ops) { async_ops_ = ops; }

  // Batched name prefetch: one async LOOKUP per not-fresh name; replies
  // warm the name/attr caches while the caller's own traffic proceeds.
  void PrefetchLookups(const FileHandle& dir, const std::vector<std::string>& names,
                       const Credentials& cred);
  // Batched attribute refresh (async GETATTR per stale handle).
  void PrefetchAttrs(const std::vector<FileHandle>& handles);

  // Cache-effectiveness counters.
  uint64_t attr_hits() const { return attr_hits_; }
  uint64_t attr_misses() const { return attr_misses_; }
  uint64_t access_hits() const { return access_hits_; }
  uint64_t data_hits() const { return data_hits_; }
  // Read-ahead / prefetch instrumentation.
  uint64_t read_aheads_issued() const { return read_aheads_issued_; }
  uint64_t read_ahead_fills() const { return read_ahead_fills_; }
  uint64_t prefetches_issued() const { return prefetches_issued_; }

 private:
  struct AttrEntry {
    Fattr attr;
    uint64_t expiry_ns = 0;
  };
  struct NameEntry {
    FileHandle fh;
    uint64_t expiry_ns = 0;
  };
  struct AccessEntry {
    uint32_t want = 0;
    uint32_t allowed = 0;
    uint64_t expiry_ns = 0;
  };
  struct DataEntry {
    uint64_t mtime_ns = 0;  // Validator.
    util::Bytes content;    // Sequential prefix of the file.
  };

  static std::string Key(const FileHandle& fh) { return util::StringOf(fh); }
  uint64_t ExpiryFor(const Fattr& attr) const;
  void StoreAttr(const FileHandle& fh, const Fattr& attr);
  void ForgetData(const std::string& key);
  void ForgetParentAttrs(const FileHandle& dir);
  void EvictDataIfNeeded();
  // Issues async reads past the cached prefix after a sequential fill.
  void MaybeReadAhead(const FileHandle& fh, const Credentials& cred, uint32_t count);

  FileSystemApi* backend_;
  sim::Clock* clock_;
  CacheOptions options_;
  obs::SpanCollector* spans_;
  AsyncFileOps* async_ops_ = nullptr;

  std::map<std::string, AttrEntry> attr_cache_;
  std::map<std::pair<std::string, std::string>, NameEntry> name_cache_;
  std::map<std::pair<std::string, uint32_t>, AccessEntry> access_cache_;
  std::map<std::string, DataEntry> data_cache_;
  uint64_t data_cache_bytes_ = 0;

  // Read-ahead chunks in flight, keyed by (file key, offset); guards
  // against duplicate issues while a chunk's reply is pending.
  std::set<std::pair<std::string, uint64_t>> read_ahead_inflight_;

  uint64_t attr_hits_ = 0;
  uint64_t attr_misses_ = 0;
  uint64_t access_hits_ = 0;
  uint64_t data_hits_ = 0;
  uint64_t read_aheads_issued_ = 0;
  uint64_t read_ahead_fills_ = 0;
  uint64_t prefetches_issued_ = 0;
};

}  // namespace nfs

#endif  // SFS_SRC_NFS_CACHE_H_
