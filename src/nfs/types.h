// NFS version 3 protocol types (RFC 1813 subset), the file system wire
// vocabulary shared by the plain NFS substrate and the SFS read-write
// protocol (which the paper describes as "virtually identical to NFS 3",
// §3.3).
#ifndef SFS_SRC_NFS_TYPES_H_
#define SFS_SRC_NFS_TYPES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/status.h"
#include "src/xdr/xdr.h"

namespace nfs {

// Opaque file handle.  This implementation always uses 32 bytes, which is
// also the size SFS's handle-encryption layer works on (paper §3.3).
using FileHandle = util::Bytes;
inline constexpr size_t kFileHandleSize = 32;

enum class FileType : uint32_t {
  kRegular = 1,
  kDirectory = 2,
  kSymlink = 5,
};

// NFS3 status codes (subset).
enum class Stat : uint32_t {
  kOk = 0,
  kPerm = 1,
  kNoEnt = 2,
  kIo = 5,
  kAccess = 13,
  kExist = 17,
  kNotDir = 20,
  kIsDir = 21,
  kInval = 22,
  kNoSpace = 28,
  kReadOnlyFs = 30,
  kNameTooLong = 63,
  kNotEmpty = 66,
  kStale = 70,
  kBadHandle = 10001,
  kNotSupported = 10004,
};

const char* StatName(Stat s);

// Converts an NFS status to a util::Status for API boundaries.
util::Status ToStatus(Stat s, const std::string& context);

// ACCESS bits (RFC 1813 §3.3.4).
inline constexpr uint32_t kAccessRead = 0x01;
inline constexpr uint32_t kAccessLookup = 0x02;
inline constexpr uint32_t kAccessModify = 0x04;
inline constexpr uint32_t kAccessExtend = 0x08;
inline constexpr uint32_t kAccessDelete = 0x10;
inline constexpr uint32_t kAccessExecute = 0x20;

// File attributes (fattr3).  Times are virtual nanoseconds.
struct Fattr {
  FileType type = FileType::kRegular;
  uint32_t mode = 0;
  uint32_t nlink = 1;
  uint32_t uid = 0;
  uint32_t gid = 0;
  uint64_t size = 0;
  uint64_t used = 0;
  uint64_t fsid = 0;
  uint64_t fileid = 0;
  uint64_t atime_ns = 0;
  uint64_t mtime_ns = 0;
  uint64_t ctime_ns = 0;

  // SFS read-write protocol extension (paper §3.3): attribute lease in
  // nanoseconds.  Zero for plain NFS 3.
  uint64_t lease_ns = 0;

  void Encode(xdr::Encoder* enc) const;
  static util::Result<Fattr> Decode(xdr::Decoder* dec);
};

// Settable attributes (sattr3).
struct Sattr {
  std::optional<uint32_t> mode;
  std::optional<uint32_t> uid;
  std::optional<uint32_t> gid;
  std::optional<uint64_t> size;
  bool touch_mtime = false;

  void Encode(xdr::Encoder* enc) const;
  static util::Result<Sattr> Decode(xdr::Decoder* dec);
};

// AUTH_UNIX-style credentials.  Plain NFS trusts whatever the client
// sends (one of the weaknesses SFS exists to fix); the SFS server ignores
// client-supplied credentials and substitutes the authserver's mapping.
struct Credentials {
  uint32_t uid = 65534;  // "nobody" by default.
  std::vector<uint32_t> gids;

  bool IsSuperuser() const { return uid == 0; }
  bool HasGid(uint32_t gid) const {
    for (uint32_t g : gids) {
      if (g == gid) {
        return true;
      }
    }
    return false;
  }

  void Encode(xdr::Encoder* enc) const;
  static util::Result<Credentials> Decode(xdr::Decoder* dec);

  static Credentials Anonymous() { return Credentials{}; }
  static Credentials User(uint32_t uid, std::vector<uint32_t> gids = {}) {
    Credentials c;
    c.uid = uid;
    c.gids = std::move(gids);
    return c;
  }
};

struct DirEntry {
  uint64_t fileid = 0;
  std::string name;
  uint64_t cookie = 0;  // Position of the *next* entry.

  void Encode(xdr::Encoder* enc) const;
  static util::Result<DirEntry> Decode(xdr::Decoder* dec);
};

// NFS3 procedure numbers (RFC 1813).
enum Proc : uint32_t {
  kProcNull = 0,
  kProcGetAttr = 1,
  kProcSetAttr = 2,
  kProcLookup = 3,
  kProcAccess = 4,
  kProcReadLink = 5,
  kProcRead = 6,
  kProcWrite = 7,
  kProcCreate = 8,
  kProcMkdir = 9,
  kProcSymlink = 10,
  kProcRemove = 12,
  kProcRmdir = 13,
  kProcRename = 14,
  kProcLink = 15,
  kProcReadDir = 16,
  kProcFsStat = 18,
  kProcCommit = 21,
};

const char* ProcName(uint32_t proc);

// NFS3 write verifier (writeverf3, RFC 1813): an opaque boot-instance
// cookie the server returns on every WRITE and COMMIT reply.  Carried
// as a trailing uint64 on the wire (both the plain-NFS and SFS
// dialects).  Clients compare the verifier seen at COMMIT time against
// the one each unstable WRITE returned; a mismatch means the server
// restarted in between and the unstable data must be replayed.
using WriteVerf = uint64_t;

// RPC program numbers used in this tree.
inline constexpr uint32_t kNfsProgram = 100003;

}  // namespace nfs

#endif  // SFS_SRC_NFS_TYPES_H_
