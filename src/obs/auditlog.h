// Tamper-evident append-only operation journal (ROADMAP item 5).
//
// The paper separates key management from file system security; this
// module extends that separation to *history*.  An attacker who seizes
// the server learns its current keys but must not be able to rewrite
// what the server already did.  The construction is the SealFS one: a
// keystream of per-batch MAC keys is ratcheted forward through the
// DSS-style SHA-1 PRNG (crypto::Prng, which "cannot be run backwards"
// — paper §3.1.3) and each key is destroyed after its batch seals, so
// the post-compromise attacker holds only future keys.  An offline
// verifier replays the keystream from the retained genesis key and
// checks every batch.
//
// Batching amortizes the MAC: one HMAC-SHA-1 finalization per
// `batch_records` records.  Record-exact tamper localization is kept by
// snapshotting the running inner HMAC state after each record and
// emitting a truncated keyed tag from the snapshot; the attacker cannot
// compute these states without the batch key, and the verifier's first
// tag mismatch pinpoints the earliest bad record.  Because the tags
// chain through the running state, a tamper also poisons the *rest of
// its batch* (everything after it is unattestable); batch size bounds
// that blast radius, which is the SealFS nratchet tradeoff.
//
// Batch wire format (XDR, big-endian), emitted at seal time:
//   header   magic u32 | batch_index u32 | first_seqno u64 |
//            count u32 | final u32
//   body     count x (64-byte record || 8-byte tag)
//   trailer  20-byte HMAC-SHA-1 over (header fields || records)
// Batch keys are positional (one RandomBytes(20) per batch index), and
// the MAC covers batch_index and first_seqno, so batches cannot be
// reordered, spliced in from another log, or silently dropped.  The
// terminal batch carries final=1; its absence means the tail was cut.
#ifndef SFS_SRC_OBS_AUDITLOG_H_
#define SFS_SRC_OBS_AUDITLOG_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/crypto/prng.h"
#include "src/crypto/sha1.h"
#include "src/util/bytes.h"

namespace obs {

// What kind of server event a record describes.
enum class AuditKind : uint32_t {
  kNfs = 1,               // NFS3 dialect RPC (proc = NFS procedure).
  kCtl = 2,               // SFSCTL RPC (proc = control procedure).
  kConnect = 3,           // Connect request (proc = ConnectResult).
  kRevocationServed = 4,  // Revocation certificate answered a connect.
  kRevocationInstalled = 5,  // ServeRevocation installed a certificate.
  kOther = 6,             // Unknown program on the secure channel.
};
const char* AuditKindName(AuditKind kind);

// One journal entry.  Fixed 64-byte canonical encoding: everything the
// MAC covers is the raw marshaled bytes, per the project's XDR rule.
struct AuditRecord {
  uint64_t seqno = 0;          // Journal position; assigned by Append.
  uint64_t time_ns = 0;        // Virtual timestamp.
  uint64_t connection_id = 0;  // Accepting ServerConnection (0 = none).
  uint32_t wire_seqno = 0;     // Secure-channel frame seqno (0 = none).
  uint32_t kind = 0;           // AuditKind.
  uint32_t proc = 0;           // Procedure number (meaning per kind).
  uint32_t verdict = 0;        // util::ErrorCode of the result; 0 = OK.
  uint64_t fh_digest = 0;      // FNV-1a of the file handle (or HostID
                               // for revocation records); 0 = none.
  uint64_t trace_id = 0;       // obs::SpanContext at dispatch time,
  uint64_t span_id = 0;        // linking the record to its trace.

  static constexpr size_t kWireSize = 64;
  util::Bytes Serialize() const;
  // Decodes exactly kWireSize bytes (no framing).
  static AuditRecord Deserialize(const uint8_t* data);
};

inline constexpr uint32_t kAuditMagic = 0x5346414c;  // "SFAL"
inline constexpr size_t kAuditHeaderSize = 24;
inline constexpr size_t kAuditTagSize = 8;
inline constexpr size_t kAuditEntrySize = AuditRecord::kWireSize + kAuditTagSize;
inline constexpr size_t kAuditMacSize = crypto::kSha1DigestSize;

// 64-bit FNV-1a, the journal's cheap (non-cryptographic) identifier for
// file handles; the MAC provides the integrity.
uint64_t AuditDigest(const util::Bytes& data);

// Append-only journal writer.  Holds the sealed log bytes in memory
// (durability is the simulation's concern; sfs::ServerAuditor charges
// the virtual disk) plus one open batch.
class AuditLog {
 public:
  struct Options {
    uint32_t batch_records = 64;  // Records per ratchet step (nratchet).
  };

  // `genesis_key` seeds the key ratchet; the verifier needs the same
  // bytes.  The writer itself cannot reproduce earlier keys once their
  // batches seal (the PRNG only runs forward and keys are zeroized).
  AuditLog(const util::Bytes& genesis_key, Options options);
  explicit AuditLog(const util::Bytes& genesis_key)
      : AuditLog(genesis_key, Options()) {}

  struct AppendInfo {
    uint64_t seqno = 0;
    uint64_t hashed_bytes = 0;  // Bytes folded into the running MAC.
  };
  // Appends one record (seqno/tag assigned here).  The caller decides
  // when to Seal; open_records() reports the batch fill.
  AppendInfo Append(AuditRecord record);

  struct SealInfo {
    uint64_t sealed_bytes = 0;    // Bytes emitted into the log (0 = no-op).
    uint64_t sealed_records = 0;  // Records in the sealed batch.
  };
  // Seals the open batch: one HMAC finalization, batch bytes appended
  // to the log, batch key destroyed.  No-op on an empty batch.
  SealInfo Seal();
  // Seals, then emits the terminal final=1 batch.  Further appends are
  // a programming error; idempotent.
  SealInfo Finalize();

  const util::Bytes& bytes() const { return log_; }
  uint64_t next_seqno() const { return next_seqno_; }
  uint32_t open_records() const { return open_count_; }
  uint64_t batches_sealed() const { return next_batch_index_; }
  bool finalized() const { return finalized_; }

  // Writes the sealed log bytes to `path`; false on I/O failure.
  bool WriteTo(const std::string& path) const;

 private:
  void OpenBatch();
  SealInfo SealBatch(bool final);

  Options options_;
  crypto::Prng keystream_;
  util::Bytes log_;
  uint64_t next_seqno_ = 0;
  uint32_t next_batch_index_ = 0;
  bool finalized_ = false;

  // Open batch state.
  bool batch_open_ = false;
  util::Bytes batch_key_;     // Zeroized at seal.
  crypto::Sha1 inner_;        // Running inner HMAC hash.
  uint64_t batch_first_seqno_ = 0;
  uint32_t open_count_ = 0;
  util::Bytes pending_;       // Serialized records + tags of the open batch.
};

// --- Offline verification ---------------------------------------------------

// One parseable record with its location and verdict.
struct AuditRecordInfo {
  AuditRecord record;
  uint64_t offset = 0;       // Byte offset of the 64-byte record in the log.
  uint32_t batch_index = 0;  // Stored batch index it appeared under.
  bool survives = false;     // Keyed tag verified at its claimed position.
};

struct AuditVerifyResult {
  bool ok = false;         // No anomaly found (tamper-free given `finalized`).
  bool finalized = false;  // Terminal batch present (tail loss detectable).
  uint64_t records_ok = 0;
  uint64_t batches_ok = 0;
  // Seqno of the earliest record that failed verification or is missing.
  std::optional<uint64_t> earliest_bad;
  std::string detail;  // Human-readable description of the first anomaly.
  std::vector<AuditRecordInfo> records;  // All parseable records, file order.
};

// Replays the keystream from `genesis_key` over `log` and verifies every
// batch.  Batches are verified under the key of their *stored* index, so
// batches after a tampered/removed region still authenticate and their
// records survive; the earliest unverifiable or missing seqno is
// reported in `earliest_bad`.
AuditVerifyResult VerifyAuditLog(const util::Bytes& genesis_key,
                                 const util::Bytes& log);

}  // namespace obs

#endif  // SFS_SRC_OBS_AUDITLOG_H_
