#include "src/obs/auditlog.h"

#include <cassert>
#include <cstdio>
#include <cstring>

#include "src/xdr/xdr.h"

namespace obs {
namespace {

constexpr uint8_t kIpad = 0x36;
constexpr uint8_t kOpad = 0x5c;

// HMAC key block (RFC 2104): the 20-byte batch key XOR pad, zero-padded
// to the SHA-1 block size.
void UpdatePadBlock(crypto::Sha1* hash, const util::Bytes& key, uint8_t pad) {
  uint8_t block[crypto::kSha1BlockSize];
  std::memset(block, pad, sizeof(block));
  for (size_t i = 0; i < key.size() && i < sizeof(block); ++i) {
    block[i] = key[i] ^ pad;
  }
  hash->Update(block, sizeof(block));
}

// The MAC-covered header prefix: everything known at batch open.
util::Bytes HeaderPrefix(uint32_t batch_index, uint64_t first_seqno) {
  xdr::Encoder enc;
  enc.PutUint32(kAuditMagic);
  enc.PutUint32(batch_index);
  enc.PutUint64(first_seqno);
  return enc.Take();
}

// The MAC-covered trailer fields: known only at seal.
util::Bytes TrailerFields(uint32_t count, bool final) {
  xdr::Encoder enc;
  enc.PutUint32(count);
  enc.PutUint32(final ? 1 : 0);
  return enc.Take();
}

// Truncated keyed tag: the first kAuditTagSize bytes of the running
// inner hash's digest at this point.  Computing it requires the inner
// state, which requires the batch key.
util::Bytes TagFromInner(const crypto::Sha1& inner) {
  crypto::Sha1 snapshot = inner;  // The running state keeps absorbing.
  util::Bytes digest = snapshot.Digest();
  digest.resize(kAuditTagSize);
  return digest;
}

uint32_t ReadU32(const uint8_t* p) {
  return (uint32_t{p[0]} << 24) | (uint32_t{p[1]} << 16) | (uint32_t{p[2]} << 8) |
         uint32_t{p[3]};
}

uint64_t ReadU64(const uint8_t* p) {
  return (uint64_t{ReadU32(p)} << 32) | ReadU32(p + 4);
}

}  // namespace

const char* AuditKindName(AuditKind kind) {
  switch (kind) {
    case AuditKind::kNfs:
      return "NFS3";
    case AuditKind::kCtl:
      return "SFSCTL";
    case AuditKind::kConnect:
      return "CONNECT";
    case AuditKind::kRevocationServed:
      return "REVOKE_SERVED";
    case AuditKind::kRevocationInstalled:
      return "REVOKE_INSTALLED";
    case AuditKind::kOther:
      return "OTHER";
  }
  return "?";
}

util::Bytes AuditRecord::Serialize() const {
  xdr::Encoder enc;
  enc.PutUint64(seqno);
  enc.PutUint64(time_ns);
  enc.PutUint64(connection_id);
  enc.PutUint32(wire_seqno);
  enc.PutUint32(kind);
  enc.PutUint32(proc);
  enc.PutUint32(verdict);
  enc.PutUint64(fh_digest);
  enc.PutUint64(trace_id);
  enc.PutUint64(span_id);
  util::Bytes out = enc.Take();
  assert(out.size() == kWireSize);
  return out;
}

AuditRecord AuditRecord::Deserialize(const uint8_t* data) {
  AuditRecord r;
  r.seqno = ReadU64(data);
  r.time_ns = ReadU64(data + 8);
  r.connection_id = ReadU64(data + 16);
  r.wire_seqno = ReadU32(data + 24);
  r.kind = ReadU32(data + 28);
  r.proc = ReadU32(data + 32);
  r.verdict = ReadU32(data + 36);
  r.fh_digest = ReadU64(data + 40);
  r.trace_id = ReadU64(data + 48);
  r.span_id = ReadU64(data + 56);
  return r;
}

uint64_t AuditDigest(const util::Bytes& data) {
  uint64_t h = 14695981039346656037ull;
  for (uint8_t b : data) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

// --- Writer -----------------------------------------------------------------

AuditLog::AuditLog(const util::Bytes& genesis_key, Options options)
    : options_(options), keystream_(genesis_key) {
  if (options_.batch_records == 0) {
    options_.batch_records = 1;
  }
}

void AuditLog::OpenBatch() {
  batch_key_ = keystream_.RandomBytes(crypto::kSha1DigestSize);
  inner_ = crypto::Sha1();
  UpdatePadBlock(&inner_, batch_key_, kIpad);
  batch_first_seqno_ = next_seqno_;
  inner_.Update(HeaderPrefix(next_batch_index_, batch_first_seqno_));
  open_count_ = 0;
  pending_.clear();
  batch_open_ = true;
}

AuditLog::AppendInfo AuditLog::Append(AuditRecord record) {
  assert(!finalized_ && "append to a finalized audit log");
  if (!batch_open_) {
    OpenBatch();
  }
  record.seqno = next_seqno_++;
  util::Bytes wire = record.Serialize();
  inner_.Update(wire);
  util::Bytes tag = TagFromInner(inner_);
  pending_.insert(pending_.end(), wire.begin(), wire.end());
  pending_.insert(pending_.end(), tag.begin(), tag.end());
  ++open_count_;
  AppendInfo info;
  info.seqno = record.seqno;
  info.hashed_bytes = kAuditEntrySize;
  return info;
}

AuditLog::SealInfo AuditLog::SealBatch(bool final) {
  inner_.Update(TrailerFields(open_count_, final));
  util::Bytes inner_digest = inner_.Digest();
  crypto::Sha1 outer;
  UpdatePadBlock(&outer, batch_key_, kOpad);
  outer.Update(inner_digest);
  util::Bytes mac = outer.Digest();

  xdr::Encoder header;
  header.PutUint32(kAuditMagic);
  header.PutUint32(next_batch_index_);
  header.PutUint64(batch_first_seqno_);
  header.PutUint32(open_count_);
  header.PutUint32(final ? 1 : 0);
  util::Bytes header_bytes = header.Take();
  assert(header_bytes.size() == kAuditHeaderSize);

  SealInfo info;
  info.sealed_records = open_count_;
  info.sealed_bytes = header_bytes.size() + pending_.size() + mac.size();
  log_.insert(log_.end(), header_bytes.begin(), header_bytes.end());
  log_.insert(log_.end(), pending_.begin(), pending_.end());
  log_.insert(log_.end(), mac.begin(), mac.end());

  // Destroy the batch key: after this point not even the server can
  // recompute these MACs (the PRNG cannot be run backwards).
  std::fill(batch_key_.begin(), batch_key_.end(), uint8_t{0});
  batch_key_.clear();
  pending_.clear();
  open_count_ = 0;
  batch_open_ = false;
  ++next_batch_index_;
  return info;
}

AuditLog::SealInfo AuditLog::Seal() {
  if (!batch_open_ || open_count_ == 0) {
    return SealInfo{};
  }
  return SealBatch(/*final=*/false);
}

AuditLog::SealInfo AuditLog::Finalize() {
  if (finalized_) {
    return SealInfo{};
  }
  SealInfo info = Seal();
  OpenBatch();  // Empty terminal batch: proves the log has an end.
  SealInfo final_info = SealBatch(/*final=*/true);
  info.sealed_bytes += final_info.sealed_bytes;
  finalized_ = true;
  return info;
}

bool AuditLog::WriteTo(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  size_t written = log_.empty() ? 0 : std::fwrite(log_.data(), 1, log_.size(), f);
  std::fclose(f);
  return written == log_.size();
}

// --- Verifier ---------------------------------------------------------------

AuditVerifyResult VerifyAuditLog(const util::Bytes& genesis_key,
                                 const util::Bytes& log) {
  AuditVerifyResult result;
  crypto::Prng keystream(genesis_key);
  std::vector<util::Bytes> keys;  // Replayed ratchet, by batch index.
  auto key_for = [&](uint32_t index) -> const util::Bytes& {
    while (keys.size() <= index) {
      keys.push_back(keystream.RandomBytes(crypto::kSha1DigestSize));
    }
    return keys[index];
  };
  auto flag = [&](uint64_t seqno, const std::string& why) {
    if (!result.earliest_bad.has_value() || seqno < *result.earliest_bad) {
      result.earliest_bad = seqno;
      result.detail = why + " (record " + std::to_string(seqno) + ")";
    }
  };

  size_t off = 0;
  uint64_t expected_seqno = 0;
  uint32_t expected_index = 0;
  bool saw_final = false;
  while (off < log.size()) {
    if (saw_final) {
      flag(expected_seqno, "bytes after the final batch");
      break;
    }
    if (log.size() - off < kAuditHeaderSize) {
      flag(expected_seqno, "log truncated inside a batch header");
      break;
    }
    const uint8_t* h = log.data() + off;
    const uint32_t magic = ReadU32(h);
    const uint32_t index = ReadU32(h + 4);
    const uint64_t first_seqno = ReadU64(h + 8);
    const uint32_t count = ReadU32(h + 16);
    const bool final = ReadU32(h + 20) != 0;
    if (magic != kAuditMagic) {
      flag(expected_seqno, "bad batch magic");
      break;  // Cannot resync: everything from here is unattested.
    }
    const uint64_t body_bytes = uint64_t{count} * kAuditEntrySize;
    const bool in_place = index == expected_index && first_seqno == expected_seqno;

    if (log.size() - off - kAuditHeaderSize < body_bytes + kAuditMacSize) {
      // Batch cut short: attest as many complete records as survive the
      // keyed tag chain, then report the first missing/unverified one.
      uint64_t verified = 0;
      if (in_place) {
        crypto::Sha1 inner;
        UpdatePadBlock(&inner, key_for(index), kIpad);
        inner.Update(HeaderPrefix(index, first_seqno));
        size_t rec_off = off + kAuditHeaderSize;
        for (uint32_t j = 0; j < count && rec_off + kAuditEntrySize <= log.size();
             ++j, rec_off += kAuditEntrySize) {
          const uint8_t* entry = log.data() + rec_off;
          AuditRecordInfo info;
          info.record = AuditRecord::Deserialize(entry);
          info.offset = rec_off;
          info.batch_index = index;
          inner.Update(entry, AuditRecord::kWireSize);
          util::Bytes tag = TagFromInner(inner);
          info.survives = info.record.seqno == first_seqno + j &&
                          std::memcmp(tag.data(), entry + AuditRecord::kWireSize,
                                      kAuditTagSize) == 0;
          if (info.survives && verified == j) {
            ++verified;
            ++result.records_ok;
          } else {
            info.survives = false;
          }
          result.records.push_back(info);
        }
      }
      flag(first_seqno + verified, "log truncated mid-batch");
      break;
    }

    // Full batch present: verify under the key of its *stored* index, so
    // authentic batches after a tampered region still attest.
    const bool misordered = index < expected_index;
    crypto::Sha1 inner;
    UpdatePadBlock(&inner, key_for(index), kIpad);
    inner.Update(HeaderPrefix(index, first_seqno));
    std::optional<uint64_t> first_bad_in_batch;
    std::vector<AuditRecordInfo> batch_records;
    size_t rec_off = off + kAuditHeaderSize;
    for (uint32_t j = 0; j < count; ++j, rec_off += kAuditEntrySize) {
      const uint8_t* entry = log.data() + rec_off;
      AuditRecordInfo info;
      info.record = AuditRecord::Deserialize(entry);
      info.offset = rec_off;
      info.batch_index = index;
      inner.Update(entry, AuditRecord::kWireSize);
      util::Bytes tag = TagFromInner(inner);
      const bool tag_ok = std::memcmp(tag.data(), entry + AuditRecord::kWireSize,
                                      kAuditTagSize) == 0;
      info.survives = tag_ok && info.record.seqno == first_seqno + j && !misordered;
      if (!info.survives && !first_bad_in_batch.has_value()) {
        first_bad_in_batch = first_seqno + j;
      }
      batch_records.push_back(info);
    }
    inner.Update(TrailerFields(count, final));
    util::Bytes inner_digest = inner.Digest();
    crypto::Sha1 outer;
    UpdatePadBlock(&outer, key_for(index), kOpad);
    outer.Update(inner_digest);
    util::Bytes mac = outer.Digest();
    const bool mac_ok =
        std::memcmp(mac.data(), log.data() + rec_off, kAuditMacSize) == 0;

    if (misordered) {
      // A batch index going backwards is a splice or duplicate: its
      // records were already attested (or refuted) at their true place.
      flag(expected_seqno, "batch index went backwards (splice/duplicate)");
      for (AuditRecordInfo& info : batch_records) {
        info.survives = false;
      }
    } else {
      if (!in_place) {
        // The batch authenticates at a later position than expected:
        // the records in between are gone.
        flag(expected_seqno, "gap before batch (batch or records removed)");
      }
      if (!mac_ok) {
        if (first_bad_in_batch.has_value()) {
          flag(*first_bad_in_batch, "record tag mismatch (tampered)");
        } else {
          // Every present record attests but the seal does not: the
          // trailer (count/final) was rewritten — records were dropped
          // from the batch tail.
          flag(first_seqno + count, "batch MAC mismatch (trailer tampered)");
        }
      } else {
        if (first_bad_in_batch.has_value()) {
          flag(*first_bad_in_batch, "record sequence mismatch");
        }
        if (final) {
          saw_final = true;
        }
        ++result.batches_ok;
      }
      expected_index = index + 1;
      expected_seqno = first_seqno + count;
    }
    for (const AuditRecordInfo& info : batch_records) {
      if (info.survives) {
        ++result.records_ok;
      }
      result.records.push_back(info);
    }
    off += kAuditHeaderSize + body_bytes + kAuditMacSize;
  }

  result.finalized = saw_final;
  if (!saw_final && !result.earliest_bad.has_value() && !log.empty()) {
    // Without the terminal batch, any number of sealed batches could
    // have been cut off the tail undetectably.
    flag(expected_seqno, "no final batch: tail truncated or log not finalized");
  }
  result.ok = !result.earliest_bad.has_value();
  return result;
}

}  // namespace obs
