#include "src/obs/timeline.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <functional>
#include <iomanip>
#include <sstream>

namespace obs {

namespace {

void AppendJsonString(std::ostringstream* out, const std::string& s) {
  *out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out << "\\\"";
        break;
      case '\\':
        *out << "\\\\";
        break;
      case '\n':
        *out << "\\n";
        break;
      case '\t':
        *out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out << buf;
        } else {
          *out << c;
        }
    }
  }
  *out << '"';
}

std::string FormatDouble(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

// Compact virtual-time rendering for cause strings and text reports.
std::string FormatNs(uint64_t ns) {
  char buf[64];
  if (ns >= 1'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(ns) / 1e9);
  } else if (ns >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.2fms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fus", static_cast<double>(ns) / 1e3);
  }
  return buf;
}

}  // namespace

const char* Timeline::EpisodeKindName(EpisodeKind kind) {
  switch (kind) {
    case EpisodeKind::kOverload:
      return "overload";
    case EpisodeKind::kRetransmitStorm:
      return "retransmit_storm";
    case EpisodeKind::kStall:
      return "backpressure_stall";
  }
  return "?";
}

Timeline::Timeline(Registry* registry, Options options)
    : registry_(registry), options_(std::move(options)) {}

size_t Timeline::EnsureRateTrack(const std::string& label,
                                 const std::string& counter) {
  for (size_t i = 0; i < rate_counters_.size(); ++i) {
    if (rate_counters_[i] == counter) {
      return i;
    }
  }
  rate_labels_.push_back(label);
  rate_counters_.push_back(counter);
  last_counters_.push_back(started_ ? registry_->CounterValue(counter) : 0);
  return rate_counters_.size() - 1;
}

void Timeline::AddRateTrack(const std::string& label,
                            const std::string& counter) {
  EnsureRateTrack(label, counter);
}

void Timeline::AddGaugeTrack(const std::string& label,
                             const std::string& gauge) {
  for (const std::string& existing : gauge_names_) {
    if (existing == gauge) {
      return;
    }
  }
  gauge_labels_.push_back(label);
  gauge_names_.push_back(gauge);
}

void Timeline::AddLatencyTrack(const std::string& label,
                               const std::string& histogram) {
  for (const std::string& existing : latency_names_) {
    if (existing == histogram) {
      return;
    }
  }
  latency_labels_.push_back(label);
  latency_names_.push_back(histogram);
  if (started_) {
    const Histogram* h = registry_->FindHistogram(histogram);
    last_hists_.push_back(h != nullptr ? h->Snapshot() : HistogramSnapshot());
  }
}

void Timeline::Start(uint64_t now_ns, const uint64_t* category_ns) {
  if (started_) {
    return;
  }
  // Bind the episode rules to tracks, auto-declaring any the caller did
  // not add explicitly — the annotator's inputs are always visible in
  // the exported tracks.
  if (!options_.overload_shed_counter.empty()) {
    overload_shed_track_ =
        EnsureRateTrack("sheds", options_.overload_shed_counter);
  }
  if (!options_.storm_retransmit_counter.empty()) {
    storm_retransmit_track_ =
        EnsureRateTrack("retransmits", options_.storm_retransmit_counter);
  }
  if (!options_.overload_queue_wait_histogram.empty()) {
    AddLatencyTrack("queue_wait", options_.overload_queue_wait_histogram);
    for (size_t i = 0; i < latency_names_.size(); ++i) {
      if (latency_names_[i] == options_.overload_queue_wait_histogram) {
        overload_queue_wait_track_ = i;
      }
    }
  }
  if (options_.stall_dirty_bytes_limit > 0 &&
      !options_.stall_dirty_gauge.empty()) {
    AddGaugeTrack("dirty_bytes", options_.stall_dirty_gauge);
    for (size_t i = 0; i < gauge_names_.size(); ++i) {
      if (gauge_names_[i] == options_.stall_dirty_gauge) {
        stall_gauge_track_ = i;
      }
    }
  }

  started_ = true;
  start_ns_ = now_ns;
  last_edge_ns_ = now_ns;
  last_counters_.clear();
  for (const std::string& counter : rate_counters_) {
    last_counters_.push_back(registry_->CounterValue(counter));
  }
  last_hists_.clear();
  for (const std::string& name : latency_names_) {
    const Histogram* h = registry_->FindHistogram(name);
    last_hists_.push_back(h != nullptr ? h->Snapshot() : HistogramSnapshot());
  }
  for (size_t c = 0; c < kTimeCategoryCount; ++c) {
    last_category_ns_[c] = category_ns[c];
  }
}

void Timeline::CloseWindow(uint64_t now_ns, const uint64_t* category_ns) {
  if (!started_ || now_ns <= last_edge_ns_) {
    return;  // Nothing elapsed — the sampler fired on an idle edge.
  }
  Window w;
  w.begin_ns = last_edge_ns_;
  w.end_ns = now_ns;
  const double span_sec = static_cast<double>(w.span_ns()) / 1e9;

  w.rates.resize(rate_counters_.size());
  for (size_t i = 0; i < rate_counters_.size(); ++i) {
    uint64_t cur = registry_->CounterValue(rate_counters_[i]);
    uint64_t delta = cur >= last_counters_[i] ? cur - last_counters_[i] : 0;
    w.rates[i].delta = delta;
    w.rates[i].per_sec = static_cast<double>(delta) / span_sec;
    last_counters_[i] = cur;
  }

  w.gauges.resize(gauge_names_.size());
  for (size_t i = 0; i < gauge_names_.size(); ++i) {
    w.gauges[i] = registry_->GaugeValue(gauge_names_[i]);
  }

  w.latency.resize(latency_names_.size());
  for (size_t i = 0; i < latency_names_.size(); ++i) {
    const Histogram* h = registry_->FindHistogram(latency_names_[i]);
    HistogramSnapshot cur =
        h != nullptr ? h->Snapshot() : HistogramSnapshot();
    HistogramSnapshot d = cur.Delta(last_hists_[i]);
    w.latency[i].count = d.count;
    w.latency[i].p50_ns = d.ApproxPercentileNs(0.5);
    w.latency[i].p90_ns = d.ApproxPercentileNs(0.9);
    w.latency[i].p99_ns = d.ApproxPercentileNs(0.99);
    last_hists_[i] = cur;
  }

  // Ledger diffs.  The clock charges every nanosecond to exactly one
  // category, so the per-window diffs sum to the window span exactly.
  for (size_t c = 0; c < kTimeCategoryCount; ++c) {
    uint64_t cur = category_ns[c];
    w.util_ns[c] = cur >= last_category_ns_[c] ? cur - last_category_ns_[c] : 0;
    last_category_ns_[c] = cur;
  }

  last_edge_ns_ = now_ns;
  windows_.push_back(std::move(w));
}

void Timeline::Finalize(uint64_t now_ns, const uint64_t* category_ns) {
  if (!started_ || finalized_) {
    return;
  }
  CloseWindow(now_ns, category_ns);  // Close the trailing partial window.
  AnnotateEpisodes();
  finalized_ = true;
}

namespace {

// Dominant ledger category across a run of windows, as "name NN%".
std::string DominantCategory(const std::vector<Timeline::Window>& windows,
                             size_t first, size_t count) {
  uint64_t totals[kTimeCategoryCount] = {};
  uint64_t span = 0;
  for (size_t i = first; i < first + count; ++i) {
    span += windows[i].span_ns();
    for (size_t c = 0; c < kTimeCategoryCount; ++c) {
      totals[c] += windows[i].util_ns[c];
    }
  }
  size_t best = 0;
  for (size_t c = 1; c < kTimeCategoryCount; ++c) {
    if (totals[c] > totals[best]) {
      best = c;
    }
  }
  if (span == 0) {
    return "idle";
  }
  int pct = static_cast<int>(100.0 * static_cast<double>(totals[best]) /
                             static_cast<double>(span));
  std::string out = TimeCategoryName(static_cast<TimeCategory>(best));
  out += " ";
  out += std::to_string(pct);
  out += "%";
  return out;
}

}  // namespace

void Timeline::AnnotateEpisodes() {
  episodes_.clear();

  struct Rule {
    EpisodeKind kind;
    size_t min_windows;
    // Returns whether window w qualifies for this episode kind.
    std::function<bool(const Window&)> qualifies;
    // Builds the cause string for a qualifying run [first, first+count).
    std::function<std::string(size_t, size_t)> cause;
  };

  const Options& o = options_;
  std::vector<Rule> rules;

  if (overload_shed_track_ != SIZE_MAX ||
      overload_queue_wait_track_ != SIZE_MAX) {
    rules.push_back(Rule{
        EpisodeKind::kOverload, o.overload_min_windows,
        [this, &o](const Window& w) {
          bool sheds = overload_shed_track_ != SIZE_MAX &&
                       w.rates[overload_shed_track_].delta > 0;
          bool slow_queue =
              overload_queue_wait_track_ != SIZE_MAX &&
              w.latency[overload_queue_wait_track_].count > 0 &&
              w.latency[overload_queue_wait_track_].p90_ns >=
                  o.overload_queue_wait_p90_ns;
          return sheds || slow_queue;
        },
        [this](size_t first, size_t count) {
          uint64_t sheds = 0;
          uint64_t peak_p90 = 0;
          for (size_t i = first; i < first + count; ++i) {
            if (overload_shed_track_ != SIZE_MAX) {
              sheds += windows_[i].rates[overload_shed_track_].delta;
            }
            if (overload_queue_wait_track_ != SIZE_MAX) {
              peak_p90 = std::max(
                  peak_p90, windows_[i].latency[overload_queue_wait_track_].p90_ns);
            }
          }
          std::string cause;
          if (sheds > 0) {
            cause = "shed " + std::to_string(sheds) + " ops, ";
          }
          cause += "queue-wait p90 peak " + FormatNs(peak_p90);
          cause += "; dominant time: " + DominantCategory(windows_, first, count);
          return cause;
        }});
  }

  if (storm_retransmit_track_ != SIZE_MAX) {
    rules.push_back(Rule{
        EpisodeKind::kRetransmitStorm, o.storm_min_windows,
        [this, &o](const Window& w) {
          return w.rates[storm_retransmit_track_].per_sec >=
                 o.storm_min_retransmits_per_sec;
        },
        [this](size_t first, size_t count) {
          uint64_t total = 0;
          double peak = 0;
          for (size_t i = first; i < first + count; ++i) {
            total += windows_[i].rates[storm_retransmit_track_].delta;
            peak = std::max(peak, windows_[i].rates[storm_retransmit_track_].per_sec);
          }
          std::string cause = std::to_string(total) +
                              " retransmits, peak " + FormatDouble(peak, 1) +
                              "/s; dominant time: " +
                              DominantCategory(windows_, first, count);
          return cause;
        }});
  }

  if (stall_gauge_track_ != SIZE_MAX && o.stall_dirty_bytes_limit > 0) {
    rules.push_back(Rule{
        EpisodeKind::kStall, o.stall_min_windows,
        [this, &o](const Window& w) {
          return w.gauges[stall_gauge_track_] >= o.stall_dirty_bytes_limit;
        },
        [this, &o](size_t first, size_t count) {
          int64_t peak = 0;
          for (size_t i = first; i < first + count; ++i) {
            peak = std::max(peak, windows_[i].gauges[stall_gauge_track_]);
          }
          std::string cause =
              "dirty bytes pinned at limit (peak " + std::to_string(peak) +
              " >= " + std::to_string(o.stall_dirty_bytes_limit) +
              "); dominant time: " + DominantCategory(windows_, first, count);
          return cause;
        }});
  }

  for (const Rule& rule : rules) {
    size_t run_start = SIZE_MAX;
    for (size_t i = 0; i <= windows_.size(); ++i) {
      bool q = i < windows_.size() && rule.qualifies(windows_[i]);
      if (q && run_start == SIZE_MAX) {
        run_start = i;
      } else if (!q && run_start != SIZE_MAX) {
        size_t count = i - run_start;
        if (count >= rule.min_windows) {
          Episode ep;
          ep.kind = rule.kind;
          ep.begin_ns = windows_[run_start].begin_ns;
          ep.end_ns = windows_[i - 1].end_ns;
          ep.window_count = count;
          ep.cause = rule.cause(run_start, count);
          episodes_.push_back(std::move(ep));
        }
        run_start = SIZE_MAX;
      }
    }
  }

  // Stable order for reports: by begin time, then kind.
  std::sort(episodes_.begin(), episodes_.end(),
            [](const Episode& a, const Episode& b) {
              if (a.begin_ns != b.begin_ns) {
                return a.begin_ns < b.begin_ns;
              }
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
}

std::string Timeline::ToJson() const {
  std::ostringstream out;
  out << "{\"window_ns\": " << options_.window_ns
      << ", \"start_ns\": " << start_ns_ << ", \"end_ns\": " << last_edge_ns_
      << ",\n \"tracks\": {\"rates\": [";
  for (size_t i = 0; i < rate_labels_.size(); ++i) {
    out << (i == 0 ? "" : ", ");
    out << "{\"label\": ";
    AppendJsonString(&out, rate_labels_[i]);
    out << ", \"counter\": ";
    AppendJsonString(&out, rate_counters_[i]);
    out << "}";
  }
  out << "], \"gauges\": [";
  for (size_t i = 0; i < gauge_labels_.size(); ++i) {
    out << (i == 0 ? "" : ", ");
    out << "{\"label\": ";
    AppendJsonString(&out, gauge_labels_[i]);
    out << ", \"gauge\": ";
    AppendJsonString(&out, gauge_names_[i]);
    out << "}";
  }
  out << "], \"latency\": [";
  for (size_t i = 0; i < latency_labels_.size(); ++i) {
    out << (i == 0 ? "" : ", ");
    out << "{\"label\": ";
    AppendJsonString(&out, latency_labels_[i]);
    out << ", \"histogram\": ";
    AppendJsonString(&out, latency_names_[i]);
    out << "}";
  }
  out << "]},\n \"windows\": [";
  for (size_t wi = 0; wi < windows_.size(); ++wi) {
    const Window& w = windows_[wi];
    out << (wi == 0 ? "\n  " : ",\n  ");
    out << "{\"begin_ns\": " << w.begin_ns << ", \"end_ns\": " << w.end_ns
        << ", \"rates\": {";
    for (size_t i = 0; i < w.rates.size(); ++i) {
      out << (i == 0 ? "" : ", ");
      AppendJsonString(&out, rate_labels_[i]);
      out << ": {\"delta\": " << w.rates[i].delta
          << ", \"per_sec\": " << FormatDouble(w.rates[i].per_sec, 3) << "}";
    }
    out << "}, \"gauges\": {";
    for (size_t i = 0; i < w.gauges.size(); ++i) {
      out << (i == 0 ? "" : ", ");
      AppendJsonString(&out, gauge_labels_[i]);
      out << ": " << w.gauges[i];
    }
    out << "}, \"latency\": {";
    for (size_t i = 0; i < w.latency.size(); ++i) {
      out << (i == 0 ? "" : ", ");
      AppendJsonString(&out, latency_labels_[i]);
      out << ": {\"count\": " << w.latency[i].count
          << ", \"p50_ns\": " << w.latency[i].p50_ns
          << ", \"p90_ns\": " << w.latency[i].p90_ns
          << ", \"p99_ns\": " << w.latency[i].p99_ns << "}";
    }
    out << "}, \"util_ns\": {";
    bool first = true;
    for (size_t c = 0; c < kTimeCategoryCount; ++c) {
      if (w.util_ns[c] == 0) {
        continue;
      }
      out << (first ? "" : ", ");
      AppendJsonString(&out,
                       TimeCategoryName(static_cast<TimeCategory>(c)));
      out << ": " << w.util_ns[c];
      first = false;
    }
    out << "}, \"util\": {";
    first = true;
    for (size_t c = 0; c < kTimeCategoryCount; ++c) {
      if (w.util_ns[c] == 0) {
        continue;
      }
      out << (first ? "" : ", ");
      AppendJsonString(&out,
                       TimeCategoryName(static_cast<TimeCategory>(c)));
      out << ": " << FormatDouble(w.UtilShare(c), 6);
      first = false;
    }
    out << "}}";
  }
  out << (windows_.empty() ? "" : "\n ") << "],\n \"episodes\": [";
  for (size_t i = 0; i < episodes_.size(); ++i) {
    const Episode& ep = episodes_[i];
    out << (i == 0 ? "\n  " : ",\n  ");
    out << "{\"kind\": ";
    AppendJsonString(&out, EpisodeKindName(ep.kind));
    out << ", \"begin_ns\": " << ep.begin_ns << ", \"end_ns\": " << ep.end_ns
        << ", \"windows\": " << ep.window_count << ", \"cause\": ";
    AppendJsonString(&out, ep.cause);
    out << "}";
  }
  out << (episodes_.empty() ? "" : "\n ") << "]}";
  return out.str();
}

std::string Timeline::ToText() const {
  std::ostringstream out;
  out << "timeline: window=" << FormatNs(options_.window_ns)
      << " start=" << FormatNs(start_ns_) << " end=" << FormatNs(last_edge_ns_)
      << " windows=" << windows_.size() << "\n";
  if (windows_.empty()) {
    return out.str();
  }

  // Header: window edges, one column per track, utilization summary.
  out << std::left << std::setw(22) << "window";
  for (const std::string& label : rate_labels_) {
    out << "  " << std::right << std::setw(13) << (label + "/s");
  }
  for (const std::string& label : gauge_labels_) {
    out << "  " << std::right << std::setw(13) << label;
  }
  for (const std::string& label : latency_labels_) {
    out << "  " << std::right << std::setw(13) << (label + ".p90");
  }
  out << "  util\n";

  for (const Window& w : windows_) {
    std::string edges = "[" + FormatNs(w.begin_ns) + "," + FormatNs(w.end_ns) + ")";
    out << std::left << std::setw(22) << edges;
    for (const RateSample& r : w.rates) {
      out << "  " << std::right << std::setw(13) << FormatDouble(r.per_sec, 1);
    }
    for (int64_t g : w.gauges) {
      out << "  " << std::right << std::setw(13) << g;
    }
    for (const LatencySample& l : w.latency) {
      out << "  " << std::right << std::setw(13)
          << (l.count == 0 ? std::string("-") : FormatNs(l.p90_ns));
    }
    out << "  ";
    // Nonzero category shares, largest first, at most four.
    std::vector<size_t> order;
    for (size_t c = 0; c < kTimeCategoryCount; ++c) {
      if (w.util_ns[c] > 0) {
        order.push_back(c);
      }
    }
    std::sort(order.begin(), order.end(), [&w](size_t a, size_t b) {
      return w.util_ns[a] > w.util_ns[b];
    });
    if (order.size() > 4) {
      order.resize(4);
    }
    for (size_t i = 0; i < order.size(); ++i) {
      size_t c = order[i];
      out << (i == 0 ? "" : " ")
          << TimeCategoryName(static_cast<TimeCategory>(c)) << ":"
          << static_cast<int>(100.0 * w.UtilShare(c) + 0.5) << "%";
    }
    out << "\n";
  }

  out << "episodes: " << episodes_.size() << "\n";
  for (const Episode& ep : episodes_) {
    out << "  " << std::left << std::setw(18) << EpisodeKindName(ep.kind)
        << "[" << FormatNs(ep.begin_ns) << ", " << FormatNs(ep.end_ns) << ")  "
        << ep.window_count << " windows  " << ep.cause << "\n";
  }
  return out.str();
}

}  // namespace obs
