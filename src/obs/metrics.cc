#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "src/obs/span.h"

namespace obs {

// Out of line: metrics.h only forward-declares SpanCollector.
Registry::Registry() : spans_(std::make_unique<SpanCollector>()) {}
Registry::~Registry() = default;

const char* TimeCategoryName(TimeCategory category) {
  switch (category) {
    case TimeCategory::kLink:
      return "link";
    case TimeCategory::kCrypto:
      return "crypto";
    case TimeCategory::kDisk:
      return "disk";
    case TimeCategory::kCpu:
      return "cpu";
    case TimeCategory::kSyscall:
      return "syscall";
    case TimeCategory::kWait:
      return "wait";
    case TimeCategory::kQueue:
      return "queue";
    case TimeCategory::kApp:
      return "app";
    case TimeCategory::kUntracked:
      return "untracked";
  }
  return "?";
}

void Histogram::Record(uint64_t value_ns) {
  size_t i = 0;
  while (i + 1 < kNumBuckets && value_ns > BucketBoundNs(i)) {
    ++i;
  }
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(value_ns, std::memory_order_relaxed);
}

double Histogram::MeanNs() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum_ns()) / static_cast<double>(n);
}

namespace {

// Shared percentile estimator over a plain bucket array; both Histogram
// and HistogramSnapshot delegate here so live and windowed percentiles
// use the identical interpolation.
uint64_t PercentileFromBuckets(const uint64_t* buckets, uint64_t n, double p) {
  if (n == 0) {
    return 0;
  }
  if (p < 0.0) {
    p = 0.0;
  }
  if (p > 1.0) {
    p = 1.0;
  }
  // Rank of the percentile sample, 1-based.
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(n - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    uint64_t in_bucket = buckets[i];
    seen += in_bucket;
    if (seen < rank) {
      continue;
    }
    // Interpolate linearly inside the winning bucket by the sample's
    // rank among this bucket's counts.  rank == seen (the bucket's last
    // sample) yields the upper bound, matching the old behavior for
    // single-sample buckets.
    uint64_t lo = i == 0 ? 0 : Histogram::BucketBoundNs(i - 1);
    uint64_t hi = Histogram::BucketBoundNs(i);
    if (hi == UINT64_MAX) {
      hi = lo * 2;  // The unbounded bucket has no real upper edge.
    }
    double pos = static_cast<double>(rank - (seen - in_bucket)) /
                 static_cast<double>(in_bucket);
    return lo + static_cast<uint64_t>(pos * static_cast<double>(hi - lo));
  }
  return Histogram::BucketBoundNs(Histogram::kNumBuckets - 1);
}

}  // namespace

uint64_t Histogram::ApproxPercentileNs(double p) const {
  return Snapshot().ApproxPercentileNs(p);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = bucket(i);
  }
  snap.count = count();
  snap.sum_ns = sum_ns();
  return snap;
}

uint64_t HistogramSnapshot::ApproxPercentileNs(double p) const {
  return PercentileFromBuckets(buckets, count, p);
}

HistogramSnapshot HistogramSnapshot::Delta(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot d;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    d.buckets[i] = buckets[i] >= earlier.buckets[i]
                       ? buckets[i] - earlier.buckets[i]
                       : 0;
    d.count += d.buckets[i];
  }
  d.sum_ns = sum_ns >= earlier.sum_ns ? sum_ns - earlier.sum_ns : 0;
  return d;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return slot.get();
}

uint64_t Registry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

int64_t Registry::GaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->value();
}

const Histogram* Registry::FindHistogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

namespace {

// Metric names are dotted identifiers of our own making, but escape
// defensively so the snapshot is valid JSON whatever callers register.
void AppendJsonString(std::ostringstream* out, const std::string& s) {
  *out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out << "\\\"";
        break;
      case '\\':
        *out << "\\\\";
        break;
      case '\n':
        *out << "\\n";
        break;
      case '\t':
        *out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out << buf;
        } else {
          *out << c;
        }
    }
  }
  *out << '"';
}

}  // namespace

std::string Registry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out << (first ? "\n" : ",\n") << "    ";
    AppendJsonString(&out, name);
    out << ": " << counter->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out << (first ? "\n" : ",\n") << "    ";
    AppendJsonString(&out, name);
    out << ": " << gauge->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    out << (first ? "\n" : ",\n") << "    ";
    AppendJsonString(&out, name);
    out << ": {\"count\": " << hist->count() << ", \"sum_ns\": " << hist->sum_ns()
        << ", \"mean_ns\": " << static_cast<uint64_t>(hist->MeanNs())
        << ", \"p50_ns\": " << hist->ApproxPercentileNs(0.5)
        << ", \"p90_ns\": " << hist->ApproxPercentileNs(0.9)
        << ", \"p99_ns\": " << hist->ApproxPercentileNs(0.99) << ", \"buckets\": [";
    bool first_bucket = true;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      uint64_t n = hist->bucket(i);
      if (n == 0) {
        continue;
      }
      out << (first_bucket ? "" : ", ") << "{\"le_ns\": ";
      if (Histogram::BucketBoundNs(i) == UINT64_MAX) {
        out << "\"inf\"";
      } else {
        out << Histogram::BucketBoundNs(i);
      }
      out << ", \"count\": " << n << "}";
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

std::string Histogram::SnapshotText() const {
  std::ostringstream out;
  out << "count=" << count() << " mean_ns=" << static_cast<uint64_t>(MeanNs())
      << " p50_ns=" << ApproxPercentileNs(0.5)
      << " p90_ns=" << ApproxPercentileNs(0.9)
      << " p99_ns=" << ApproxPercentileNs(0.99);
  return out.str();
}

std::string Registry::SnapshotText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  size_t width = 4;
  for (const auto& [name, counter] : counters_) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, gauge] : gauges_) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, hist] : histograms_) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, counter] : counters_) {
    out << std::left << std::setw(static_cast<int>(width)) << name << "  "
        << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out << std::left << std::setw(static_cast<int>(width)) << name
        << "  " << gauge->value() << " (gauge)\n";
  }
  if (!histograms_.empty()) {
    // Percentile table: the distribution shape at a glance, instead of
    // the raw bucket counts (those remain in SnapshotJson).
    out << std::left << std::setw(static_cast<int>(width)) << "histogram"
        << "  " << std::right << std::setw(10) << "count" << std::setw(12)
        << "mean_ns" << std::setw(12) << "p50_ns" << std::setw(12) << "p90_ns"
        << std::setw(12) << "p99_ns" << "\n";
    for (const auto& [name, hist] : histograms_) {
      out << std::left << std::setw(static_cast<int>(width)) << name << "  "
          << std::right << std::setw(10) << hist->count() << std::setw(12)
          << static_cast<uint64_t>(hist->MeanNs()) << std::setw(12)
          << hist->ApproxPercentileNs(0.5) << std::setw(12)
          << hist->ApproxPercentileNs(0.9) << std::setw(12)
          << hist->ApproxPercentileNs(0.99) << "\n";
    }
  }
  return out.str();
}

Registry* Registry::Default() {
  static Registry* instance = new Registry();
  return instance;
}

void ProcMetricsTable::Init(Registry* registry, std::string prefix) {
  registry_ = registry;
  prefix_ = std::move(prefix);
  procs_.clear();
}

ProcMetrics* ProcMetricsTable::Get(uint32_t proc, const std::string& proc_name) {
  auto it = procs_.find(proc);
  if (it != procs_.end()) {
    return &it->second;
  }
  std::string base = prefix_ + "." + proc_name;
  ProcMetrics m;
  m.calls = registry_->GetCounter(base + ".calls");
  m.errors = registry_->GetCounter(base + ".errors");
  m.retransmits = registry_->GetCounter(base + ".retransmits");
  m.bytes_sent = registry_->GetCounter(base + ".bytes_sent");
  m.bytes_received = registry_->GetCounter(base + ".bytes_received");
  m.latency = registry_->GetHistogram(base + ".latency_ns");
  for (size_t i = 0; i < kTimeCategoryCount; ++i) {
    m.time[i] = registry_->GetCounter(
        base + ".time." + TimeCategoryName(static_cast<TimeCategory>(i)) + "_ns");
  }
  return &procs_.emplace(proc, m).first->second;
}

}  // namespace obs
