// Virtual-time telemetry timeline: windowed metric tracks plus a
// rule-based episode annotator.
//
// End-of-run aggregates (the Registry snapshot) answer "how much"; the
// Timeline answers "when".  Every window (default 10 ms virtual) it
// snapshots
//   - delta-rates of selected counters (ops/sec, wire msgs/sec,
//     retransmits/sec, sheds/sec),
//   - gauges sampled at the window edge (admission-queue depth,
//     executor occupancy, dirty buffer bytes, client in-flight calls),
//   - per-window latency percentiles via HistogramSnapshot diffs
//     (windowed p50/p90/p99, not run-cumulative), and
//   - per-TimeCategory utilization from clock-ledger diffs, shares
//     summing to exactly the window's span.
// On top of the tracks, an annotator marks overload, retransmit-storm,
// and backpressure-stall episodes with begin/end virtual timestamps and
// a cause summary (docs/OBSERVABILITY.md §8).
//
// Layering: like SpanCollector, obs cannot see sim, so the Timeline
// never schedules anything itself.  A driver — sim::TimelineSampler on
// a recurring EventQueue event, or a test calling edges by hand —
// feeds it (now_ns, category ledger) pairs at window boundaries.
// Windows are contiguous but not necessarily equal-length: when the
// clock jumps past several edges in one Advance() the sampler event
// dispatches late and the timeline closes one catch-up window covering
// the whole gap.
#ifndef SFS_SRC_OBS_TIMELINE_H_
#define SFS_SRC_OBS_TIMELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace obs {

class Timeline {
 public:
  struct Options {
    // Nominal window span; the sampler schedules edges at this period.
    // Stored here so reports can state the sampling resolution.
    uint64_t window_ns = 10'000'000;  // 10 ms virtual.

    // -- Episode rules (names resolved lazily; a metric that never
    // appears simply never triggers).  A rule fires when its predicate
    // holds for >= min_windows consecutive windows.

    // Overload: shed delta > 0 OR windowed queue-wait p90 above the
    // threshold.
    std::string overload_shed_counter = "server.shed";
    std::string overload_queue_wait_histogram = "server.queue_wait_ns";
    uint64_t overload_queue_wait_p90_ns = 1'000'000;  // 1 ms virtual.
    size_t overload_min_windows = 2;

    // Retransmit storm: retransmissions/sec at or above the threshold.
    std::string storm_retransmit_counter = "link.retransmissions";
    double storm_min_retransmits_per_sec = 100.0;
    size_t storm_min_windows = 2;

    // Backpressure stall: a dirty-bytes gauge pinned at/above the
    // limit.  0 disables the rule.
    std::string stall_dirty_gauge = "nfs.cache.dirty_bytes";
    int64_t stall_dirty_bytes_limit = 0;
    size_t stall_min_windows = 2;
  };

  // One windowed reading of a rate (counter-delta) track.
  struct RateSample {
    uint64_t delta = 0;   // Counter increments inside the window.
    double per_sec = 0;   // delta scaled by the window's actual span.
  };

  // One windowed reading of a latency (histogram-diff) track.
  struct LatencySample {
    uint64_t count = 0;
    uint64_t p50_ns = 0;
    uint64_t p90_ns = 0;
    uint64_t p99_ns = 0;
  };

  struct Window {
    uint64_t begin_ns = 0;
    uint64_t end_ns = 0;  // Windows are contiguous: next begin == end.
    std::vector<RateSample> rates;      // Parallel to rate track order.
    std::vector<int64_t> gauges;        // Value at end_ns, per gauge track.
    std::vector<LatencySample> latency; // Parallel to latency track order.
    // Ledger nanoseconds charged to each category inside the window;
    // sums exactly to end_ns - begin_ns.
    uint64_t util_ns[kTimeCategoryCount] = {};

    uint64_t span_ns() const { return end_ns - begin_ns; }
    double UtilShare(size_t category) const {
      return span_ns() == 0 ? 0.0
                            : static_cast<double>(util_ns[category]) /
                                  static_cast<double>(span_ns());
    }
  };

  enum class EpisodeKind : uint8_t { kOverload, kRetransmitStorm, kStall };
  static const char* EpisodeKindName(EpisodeKind kind);

  struct Episode {
    EpisodeKind kind;
    uint64_t begin_ns = 0;  // First qualifying window's begin.
    uint64_t end_ns = 0;    // Last qualifying window's end.
    size_t window_count = 0;
    std::string cause;  // Human-readable: trigger + dominant time category.
  };

  // Two overloads instead of a defaulted Options argument: a default
  // argument would need Options complete inside its own class.
  explicit Timeline(Registry* registry) : Timeline(registry, Options()) {}
  Timeline(Registry* registry, Options options);

  // -- Track declaration.  Call before Start(); tracks added later see
  // deltas only from the next window on.  Labels are display names;
  // metric names are resolved against the registry lazily each window,
  // so a track may be declared before its metric first exists (reads 0).
  void AddRateTrack(const std::string& label, const std::string& counter);
  void AddGaugeTrack(const std::string& label, const std::string& gauge);
  void AddLatencyTrack(const std::string& label, const std::string& histogram);

  // -- Edge feeding (driver-facing).  `category_ns` points at
  // kTimeCategoryCount totals — the clock ledger at `now_ns`.
  // Start() pins the origin and baselines; CloseWindow() closes
  // [last_edge, now_ns) (no-op when now_ns has not advanced);
  // Finalize() closes the last partial window and runs the annotator.
  void Start(uint64_t now_ns, const uint64_t* category_ns);
  void CloseWindow(uint64_t now_ns, const uint64_t* category_ns);
  void Finalize(uint64_t now_ns, const uint64_t* category_ns);

  bool started() const { return started_; }
  uint64_t start_ns() const { return start_ns_; }
  uint64_t window_ns() const { return options_.window_ns; }
  const Options& options() const { return options_; }
  const std::vector<Window>& windows() const { return windows_; }
  const std::vector<Episode>& episodes() const { return episodes_; }
  const std::vector<std::string>& rate_labels() const { return rate_labels_; }
  const std::vector<std::string>& gauge_labels() const { return gauge_labels_; }
  const std::vector<std::string>& latency_labels() const {
    return latency_labels_;
  }

  // Machine-readable timeline: {"window_ns", "start_ns", "tracks",
  // "windows": [...], "episodes": [...]}.  Embedded by BenchReport as
  // the per-run "timelines" section (docs/OBSERVABILITY.md §8).
  std::string ToJson() const;
  // Aligned-column rendering for obs_report --timeline.
  std::string ToText() const;

 private:
  struct EpisodeRule;  // Predicate + bookkeeping for one episode kind.

  // Index of the track bound to `counter`, adding it if missing.
  size_t EnsureRateTrack(const std::string& label, const std::string& counter);
  void AnnotateEpisodes();

  Registry* registry_;
  Options options_;

  std::vector<std::string> rate_labels_;
  std::vector<std::string> rate_counters_;
  std::vector<std::string> gauge_labels_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> latency_labels_;
  std::vector<std::string> latency_names_;

  bool started_ = false;
  bool finalized_ = false;
  uint64_t start_ns_ = 0;
  uint64_t last_edge_ns_ = 0;
  std::vector<uint64_t> last_counters_;
  std::vector<HistogramSnapshot> last_hists_;
  uint64_t last_category_ns_[kTimeCategoryCount] = {};

  // Annotator bindings (indices into the track vectors; SIZE_MAX when
  // the rule's metric is not tracked).
  size_t overload_shed_track_ = SIZE_MAX;
  size_t overload_queue_wait_track_ = SIZE_MAX;
  size_t storm_retransmit_track_ = SIZE_MAX;
  size_t stall_gauge_track_ = SIZE_MAX;

  std::vector<Window> windows_;
  std::vector<Episode> episodes_;
};

}  // namespace obs

#endif  // SFS_SRC_OBS_TIMELINE_H_
