// Causal span tracing: a tree of timed intervals tying every top-level
// VFS/workload operation to the NFS cache ops, RPC calls, seal/open
// crypto, link transits, server dispatches, and disk charges it caused.
//
// The paper's evaluation argues from where the time goes (§4, Figures
// 5-9); spans make that attribution structural instead of statistical.
// Each span records the sim::Clock per-category ledger at its start and
// end, so a span's cost splits exactly into TimeCategory buckets.  The
// simulation is single-threaded, which gives root spans a strong
// invariant: every nanosecond the clock advanced during a root span was
// charged to some category, so a root's category totals sum precisely to
// its duration, and summing roots over a workload reproduces the clock's
// own ledger (the cross-check bench/span_report performs).
//
// Parent/child links propagate two ways:
//   * ambient: synchronous scopes (VFS ops, cache ops, stop-and-wait
//     calls, seal/open, disk charges) nest via a context stack
//     (ScopedSpan pushes/pops);
//   * explicit: asynchronous work (pipelined RPC calls, server-side
//     dispatch reached through the simulated wire) carries a SpanContext
//     in call metadata, so client and server events land in one tree
//     even under pipelining and retransmission (docs/OBSERVABILITY.md
//     §"Spans" has the wire rules).
//
// Layering: sim depends on obs (the clock charges TimeCategories), so
// this header cannot see sim::Clock.  The collector instead takes two
// callbacks — now() and the per-category ledger — at Enable() time.
#ifndef SFS_SRC_OBS_SPAN_H_
#define SFS_SRC_OBS_SPAN_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace obs {

// A span's coordinates in its trace, as carried in call metadata across
// the simulated wire (two trailing XDR uint64s; see PROTOCOL.md §11).
struct SpanContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  bool valid() const { return span_id != 0; }
};

struct Span {
  uint64_t id = 0;
  uint64_t parent_id = 0;  // 0 = root span.
  uint64_t trace_id = 0;   // Root span's id, shared by the whole tree.
  std::string name;        // "vfs.open", "rpc.call.GETATTR", "disk.read"...
  const char* layer = "";  // "vfs", "nfs.cache", "rpc", "sfs.chan", ...
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  // Ledger diff across the span: where its wall time was charged.
  uint64_t cat_ns[kTimeCategoryCount] = {};

  // Annotations.
  std::string detail;       // Procedure name, path, error text.
  uint32_t xid = 0;
  uint32_t seqno = 0;
  uint64_t wire_bytes = 0;
  uint32_t retransmits = 0;  // Copies resent while this span was open.
  bool drc_hit = false;      // Answered from a duplicate-request cache.
  bool error = false;

  uint64_t duration_ns() const { return end_ns - start_ns; }
  uint64_t CategoryTotalNs() const {
    uint64_t total = 0;
    for (uint64_t ns : cat_ns) {
      total += ns;
    }
    return total;
  }
  SpanContext context() const { return SpanContext{trace_id, id}; }
};

// Collects spans for one registry.  Disabled (the default) every entry
// point is a cheap early-out, so instrumented layers stay free when
// tracing is off.  Not thread-safe — the simulation is single-threaded
// (the same story as RingBufferSink; docs/OBSERVABILITY.md).
class SpanCollector {
 public:
  using NowFn = std::function<uint64_t()>;
  // Copies the clock's per-category charge totals into `out`.
  using LedgerFn = std::function<void(uint64_t out[kTimeCategoryCount])>;
  // Receives one formatted slow-op tree dump.
  using SlowOpSink = std::function<void(const std::string& dump)>;

  // Enables collection.  `capacity` bounds the finished-span store;
  // once full, further finished spans are counted in dropped() and
  // discarded (open spans still close correctly).
  void Enable(NowFn now, LedgerFn ledger, size_t capacity = 1 << 16);
  void Disable();
  bool enabled() const { return enabled_; }

  // Opens a span and returns its id (0 when disabled — every other
  // entry point treats id 0 as a no-op).  Parent resolution: `parent`
  // if valid, else the ambient stack top, else this span is a root.
  uint64_t Begin(std::string name, const char* layer, SpanContext parent = {});
  void End(uint64_t id);

  // Mutable handle on an open span for annotations; nullptr if unknown.
  Span* Find(uint64_t id);

  // Ambient context stack (ScopedSpan drives this; Push/Pop must nest).
  void Push(uint64_t id);
  void Pop(uint64_t id);
  SpanContext current() const;

  // Replaces the ambient stack wholesale, returning the previous one.
  // The discrete-event loop uses this to run a server handler under the
  // submitting client's context instead of whichever caller happens to
  // be pumping events (sim::Host); a stale id in the installed stack is
  // harmless — current() treats closed spans as no context.
  std::vector<uint64_t> SwapStack(std::vector<uint64_t> stack) {
    std::swap(stack_, stack);
    return stack;
  }

  // Records an already-measured interval (used for pipelined link
  // transits, whose endpoints are known only at delivery time).  The
  // span's id/trace are assigned here; cat_ns is taken as given.
  void RecordClosed(Span span, SpanContext parent);

  const std::vector<Span>& finished() const { return finished_; }
  std::vector<Span> TakeFinished();
  void ClearFinished() { finished_.clear(); }
  uint64_t dropped() const { return dropped_; }
  size_t open_count() const { return open_.size(); }

  // Slow-op log: when a root span ends, if its duration is at least
  // `threshold_ns` or any span in its tree saw a retransmit or DRC hit,
  // the whole tree is formatted and handed to `sink`.  A null sink
  // writes one util::log line per span at kInfo.  threshold_ns == 0
  // disables the latency trigger (retransmit/DRC still fire).
  void EnableSlowOpLog(uint64_t threshold_ns, SlowOpSink sink = nullptr);
  void DisableSlowOpLog() { slow_op_log_ = false; }
  uint64_t slow_ops_logged() const { return slow_ops_logged_; }

 private:
  void SnapshotLedger(uint64_t out[kTimeCategoryCount]) const;
  void Finish(Span span);
  void MaybeLogSlowOp(const Span& root);

  bool enabled_ = false;
  NowFn now_;
  LedgerFn ledger_;
  size_t capacity_ = 0;
  uint64_t next_id_ = 1;

  struct OpenSpan {
    Span span;
    uint64_t start_ledger[kTimeCategoryCount] = {};
  };
  std::map<uint64_t, OpenSpan> open_;
  std::vector<uint64_t> stack_;
  std::vector<Span> finished_;
  uint64_t dropped_ = 0;

  bool slow_op_log_ = false;
  uint64_t slow_threshold_ns_ = 0;
  SlowOpSink slow_sink_;
  uint64_t slow_ops_logged_ = 0;
};

// RAII synchronous span: Begin + Push on construction, Pop + End on
// destruction.  A disabled collector makes every step a no-op.
class ScopedSpan {
 public:
  ScopedSpan(SpanCollector* collector, std::string name, const char* layer,
             std::string detail = "")
      : collector_(collector) {
    if (collector_ != nullptr && collector_->enabled()) {
      id_ = collector_->Begin(std::move(name), layer);
      if (Span* span = collector_->Find(id_)) {
        span->detail = std::move(detail);
      }
      collector_->Push(id_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (id_ != 0) {
      collector_->Pop(id_);
      collector_->End(id_);
    }
  }

  uint64_t id() const { return id_; }
  Span* span() { return id_ != 0 ? collector_->Find(id_) : nullptr; }

 private:
  SpanCollector* collector_;
  uint64_t id_ = 0;
};

// --- Critical-path analysis -------------------------------------------------

// One row of a critical-path table: spans aggregated under `name`, with
// wall time split into TimeCategory buckets by the spans' ledger diffs.
struct CriticalPathRow {
  std::string name;
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t cat_ns[kTimeCategoryCount] = {};
};

// Aggregates every root span (parent_id == 0) by name.  In the
// single-threaded simulation each root's buckets sum exactly to its
// duration, so the table's totals reproduce the clock ledger over the
// traced interval.  Rows are sorted by descending total_ns.
std::vector<CriticalPathRow> CriticalPathByRoot(const std::vector<Span>& spans);

// Aggregates spans of one layer by name (e.g. layer "rpc" for a
// per-procedure table).  Note: child spans of concurrent (pipelined)
// operations overlap, so unlike the root table this one may double-count
// shared wall time across rows.
std::vector<CriticalPathRow> CriticalPathByName(const std::vector<Span>& spans,
                                                const char* layer);

// All spans of `trace_id`, roots first, then by start time.
std::vector<Span> SpansOfTrace(const std::vector<Span>& spans, uint64_t trace_id);

// Indented one-line-per-span rendering of one trace's tree.
std::string FormatSpanTree(const std::vector<Span>& spans, uint64_t trace_id);

// --- Perfetto / Chrome trace-event export -----------------------------------

// Serializes spans as Chrome trace-event JSON ("X" complete events, one
// tid per layer) loadable by Perfetto (ui.perfetto.dev) and
// chrome://tracing.  Virtual nanoseconds map to microsecond timestamps.
std::string ExportChromeTrace(const std::vector<Span>& spans);

// As above, plus the timeline's tracks merged in: one Chrome counter
// ("ph":"C") series per rate/gauge/latency track, a stacked "util"
// counter with the per-window category shares, and the annotator's
// episodes as slices on a dedicated "timeline.episodes" track.  A null
// timeline degenerates to the spans-only export.
class Timeline;
std::string ExportChromeTrace(const std::vector<Span>& spans,
                              const Timeline* timeline);

// Writes ExportChromeTrace(spans) to `path`; false on I/O failure.
bool WriteChromeTrace(const std::string& path, const std::vector<Span>& spans);
bool WriteChromeTrace(const std::string& path, const std::vector<Span>& spans,
                      const Timeline* timeline);

}  // namespace obs

#endif  // SFS_SRC_OBS_SPAN_H_
