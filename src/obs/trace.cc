#include "src/obs/trace.h"

#include <algorithm>
#include <sstream>

#include "src/obs/metrics.h"

namespace obs {

const char* TraceEventKindName(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kClientCall:
      return "call";
    case TraceEvent::Kind::kClientRetransmit:
      return "retransmit";
    case TraceEvent::Kind::kClientStaleReply:
      return "stale-reply";
    case TraceEvent::Kind::kClientReply:
      return "reply";
    case TraceEvent::Kind::kServerDispatch:
      return "dispatch";
    case TraceEvent::Kind::kServerReply:
      return "server-reply";
    case TraceEvent::Kind::kServerDrcHit:
      return "drc-hit";
  }
  return "?";
}

RingBufferSink::RingBufferSink(size_t capacity) : capacity_(capacity) {
  ring_.reserve(std::min<size_t>(capacity_, 256));
}

RingBufferSink::RingBufferSink(size_t capacity, Registry* registry)
    : RingBufferSink(capacity) {
  if (registry != nullptr) {
    dropped_counter_ = registry->GetCounter("trace.ring.dropped");
  }
}

void RingBufferSink::OnEvent(const TraceEvent& event) {
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  ring_[next_] = event;
  next_ = (next_ + 1) % capacity_;
  if (dropped_counter_ != nullptr) {
    dropped_counter_->Increment();
  }
}

std::vector<TraceEvent> RingBufferSink::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // next_ points at the oldest retained event once the ring has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

void RingBufferSink::Clear() {
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

std::string PrettyPrintSink::Format(const TraceEvent& event) {
  std::ostringstream out;
  out << event.layer << " " << TraceEventKindName(event.kind);
  if (!event.proc_name.empty()) {
    out << " " << event.proc_name;
  } else if (event.proc != 0 || event.prog != 0) {
    out << " proc=" << event.proc;
  }
  out << " xid=" << event.xid;
  if (event.seqno != 0) {
    out << " seq=" << event.seqno;
  }
  if (event.wire_bytes != 0) {
    out << " " << event.wire_bytes << "B";
  }
  if (event.attempt != 0) {
    out << " attempt=" << event.attempt;
  }
  if (event.t_recv_ns != 0) {
    out << " t=" << event.t_send_ns << ".." << event.t_recv_ns << "ns"
        << " rtt=" << (event.t_recv_ns - event.t_send_ns) / 1000 << "us";
  } else if (event.t_send_ns != 0) {
    out << " t=" << event.t_send_ns << "ns";
  }
  if (event.drc_hit) {
    out << " [drc]";
  }
  if (!event.note.empty()) {
    out << " (" << event.note << ")";
  }
  return out.str();
}

void PrettyPrintSink::OnEvent(const TraceEvent& event) {
  if (util::GetLogLevel() > level_) {
    return;
  }
  util::LogMessage(level_, Format(event));
}

void Tracer::AddSink(TraceSink* sink) { sinks_.push_back(sink); }

void Tracer::RemoveSink(TraceSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

}  // namespace obs
