// Process-wide metrics registry: named counters and fixed-bucket latency
// histograms, cheap enough to stay enabled in benchmarks.
//
// The paper's evaluation (§4, Figures 5-9) is built on per-RPC
// breakdowns — which procedures a workload issues and what each costs in
// network, crypto, and disk time.  This registry is where every layer
// (sim::Link, rpc::Client/Dispatcher, sfs::MountPoint/ServerConnection,
// nfs::NfsProgram) publishes those numbers, replacing the ad-hoc
// counters that used to be hand-summed in bench/testbed.h.
//
// Concurrency: increments are relaxed atomic adds — no locks, no
// allocation on the hot path.  Metric *creation* (GetCounter /
// GetHistogram) takes a mutex and may allocate; callers cache the
// returned pointer, which stays valid for the registry's lifetime.
#ifndef SFS_SRC_OBS_METRICS_H_
#define SFS_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/obs/trace.h"

namespace obs {

// Where a nanosecond of virtual time was charged.  sim::Clock accounts
// every Advance() against one of these; the per-category totals become
// the time.<category>_ns counters in snapshots and must sum to the
// clock's total (see docs/OBSERVABILITY.md).
enum class TimeCategory : uint8_t {
  kLink = 0,   // Wire transit: latency + bandwidth + per-message overhead.
  kCrypto,     // Symmetric seal/open and public-key operations.
  kDisk,       // Disk mechanics: seeks, transfers, metadata updates.
  kCpu,        // User-level daemon crossings, copies, server op processing.
  kSyscall,    // Local system-call overhead (VFS entry).
  kWait,       // Retransmission timeouts spent waiting out lost messages.
  kQueue,      // Server admission-queue wait (overload).  Rarely lands on
               // the global ledger — queue wait overlaps the service of
               // whatever the server is busy with, and the single shared
               // timeline charges each nanosecond once — but spans and
               // the server.queue_wait_ns histogram report it per
               // request (docs/OBSERVABILITY.md §"time.queue").
  kApp,        // Application CPU simulated by workloads (compile phases).
  kUntracked,  // Legacy untagged Advance() calls; ~0 on instrumented paths.
};
inline constexpr size_t kTimeCategoryCount = 9;
const char* TimeCategoryName(TimeCategory category);

// Monotonic counter.  Increment is a relaxed atomic add; Set exists for
// exported gauges (e.g. copying clock totals into a snapshot).
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Set(uint64_t value) { value_.store(value, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-value instrument for quantities that go up *and* down: queue
// depths, in-flight call counts, dirty buffer bytes.  Unlike Counter,
// a Gauge is signed and its Set/Add are not monotonic; snapshots report
// the instantaneous value, never a rate.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Plain-value copy of a Histogram at one instant.  Two snapshots of the
// same histogram can be diffed (Delta) to get the samples recorded in
// between — the windowed-percentile path used by obs::Timeline, with no
// second registry and no reset of the live histogram.
struct HistogramSnapshot {
  static constexpr size_t kNumBuckets = 28;

  uint64_t buckets[kNumBuckets] = {};
  uint64_t count = 0;
  uint64_t sum_ns = 0;

  double MeanNs() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum_ns) / static_cast<double>(count);
  }
  // Same estimator as Histogram::ApproxPercentileNs, over this
  // snapshot's buckets.
  uint64_t ApproxPercentileNs(double p) const;
  // This snapshot minus an `earlier` snapshot of the same histogram:
  // exactly the samples recorded between the two.  Saturates at zero
  // defensively (snapshots of a live histogram are monotone).
  HistogramSnapshot Delta(const HistogramSnapshot& earlier) const;
};

// Fixed-bucket latency histogram.  Bucket i counts samples with
// value <= BucketBoundNs(i); bounds double from 1us, the last bucket is
// unbounded.  Everything is relaxed atomics: Record never locks or
// allocates.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = HistogramSnapshot::kNumBuckets;

  // Upper bound (inclusive) of bucket i: 1us << i, except the last
  // bucket which absorbs everything larger (~2.2 virtual minutes).
  static uint64_t BucketBoundNs(size_t i) {
    return i + 1 >= kNumBuckets ? UINT64_MAX : uint64_t{1000} << i;
  }

  void Record(uint64_t value_ns);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_ns() const { return sum_ns_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  double MeanNs() const;
  // Estimate of the p-th percentile sample (p in [0, 1]); 0 when empty.
  // Linearly interpolates within the winning bucket by the sample's rank
  // among that bucket's counts, so a lone sample still reports the
  // bucket's upper bound but dense buckets resolve finer than 2×.
  uint64_t ApproxPercentileNs(double p) const;

  // Consistent-enough copy of the current state (relaxed loads; exact
  // under the single-threaded simulator).
  HistogramSnapshot Snapshot() const;
  // Samples recorded since `earlier` was taken.
  HistogramSnapshot Delta(const HistogramSnapshot& earlier) const {
    return Snapshot().Delta(earlier);
  }

  // One-line human-readable summary: count, mean, and the p50/p90/p99
  // estimates — the distribution shape, not the raw bucket counts.
  std::string SnapshotText() const;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_ns_{0};
};

// Named metrics for one process (or one testbed).  Also owns the Tracer
// through which the RPC layers publish structured trace events — one
// handle threads the whole observability subsystem through a stack.
class SpanCollector;

class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Get-or-create.  The returned pointer is stable for the registry's
  // lifetime; cache it rather than re-resolving per increment.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // Read-side lookups; 0 / nullptr when the metric was never created.
  uint64_t CounterValue(const std::string& name) const;
  int64_t GaugeValue(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  // Machine-readable dump:
  // {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  // Histograms list only their nonzero buckets.
  std::string SnapshotJson() const;
  // Human-readable dump, one metric per line.
  std::string SnapshotText() const;

  Tracer& tracer() { return tracer_; }

  // The registry's span collector (src/obs/span.h); disabled until a
  // harness calls spans().Enable() with clock callbacks.  Held by
  // pointer so this header need not see the span types.
  SpanCollector& spans() { return *spans_; }

  // Shared fallback for components constructed without an explicit
  // registry (the "process-wide" registry).
  static Registry* Default();

 private:
  mutable std::mutex mu_;  // Guards the maps, not the metric values.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  Tracer tracer_;
  std::unique_ptr<SpanCollector> spans_;
};

// Per-procedure client-side metric family: call/error/byte counters, a
// latency histogram, and per-category time counters sliced out of the
// clock's accounting across the call.
struct ProcMetrics {
  Counter* calls = nullptr;
  Counter* errors = nullptr;
  Counter* retransmits = nullptr;
  Counter* bytes_sent = nullptr;
  Counter* bytes_received = nullptr;
  Histogram* latency = nullptr;
  Counter* time[kTimeCategoryCount] = {};
};

// Caches ProcMetrics per procedure number under one name prefix
// (e.g. "rpc.client.NFS3").  Get() allocates only on the first call for
// a given procedure; steady-state lookups are one map find.
class ProcMetricsTable {
 public:
  ProcMetricsTable() = default;

  void Init(Registry* registry, std::string prefix);
  bool initialized() const { return registry_ != nullptr; }

  // `proc_name` is used to build metric names on first sight of `proc`
  // (the existing proc-name resolvers plug in here).
  ProcMetrics* Get(uint32_t proc, const std::string& proc_name);

 private:
  Registry* registry_ = nullptr;
  std::string prefix_;
  std::map<uint32_t, ProcMetrics> procs_;
};

}  // namespace obs

#endif  // SFS_SRC_OBS_METRICS_H_
