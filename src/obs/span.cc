#include "src/obs/span.h"

#include "src/obs/timeline.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string_view>

#include "src/util/log.h"

namespace obs {

void SpanCollector::Enable(NowFn now, LedgerFn ledger, size_t capacity) {
  enabled_ = true;
  now_ = std::move(now);
  ledger_ = std::move(ledger);
  capacity_ = capacity;
}

void SpanCollector::Disable() {
  enabled_ = false;
  open_.clear();
  stack_.clear();
}

void SpanCollector::SnapshotLedger(uint64_t out[kTimeCategoryCount]) const {
  if (ledger_) {
    ledger_(out);
  } else {
    std::fill(out, out + kTimeCategoryCount, 0);
  }
}

uint64_t SpanCollector::Begin(std::string name, const char* layer, SpanContext parent) {
  if (!enabled_) {
    return 0;
  }
  OpenSpan open;
  open.span.id = next_id_++;
  open.span.name = std::move(name);
  open.span.layer = layer;
  open.span.start_ns = now_ ? now_() : 0;
  if (parent.valid()) {
    open.span.parent_id = parent.span_id;
    open.span.trace_id = parent.trace_id != 0 ? parent.trace_id : parent.span_id;
  } else if (!stack_.empty()) {
    if (const auto it = open_.find(stack_.back()); it != open_.end()) {
      open.span.parent_id = it->second.span.id;
      open.span.trace_id = it->second.span.trace_id;
    }
  }
  if (open.span.trace_id == 0) {
    open.span.trace_id = open.span.id;  // This span roots a new trace.
  }
  SnapshotLedger(open.start_ledger);
  uint64_t id = open.span.id;
  open_.emplace(id, std::move(open));
  return id;
}

void SpanCollector::End(uint64_t id) {
  auto it = open_.find(id);
  if (id == 0 || it == open_.end()) {
    return;
  }
  Span span = std::move(it->second.span);
  span.end_ns = now_ ? now_() : span.start_ns;
  uint64_t end_ledger[kTimeCategoryCount];
  SnapshotLedger(end_ledger);
  for (size_t i = 0; i < kTimeCategoryCount; ++i) {
    span.cat_ns[i] = end_ledger[i] - it->second.start_ledger[i];
  }
  open_.erase(it);
  const bool is_root = span.parent_id == 0;
  Finish(std::move(span));
  if (is_root && slow_op_log_ && !finished_.empty() &&
      finished_.back().parent_id == 0) {
    MaybeLogSlowOp(finished_.back());
  }
}

Span* SpanCollector::Find(uint64_t id) {
  auto it = open_.find(id);
  return it == open_.end() ? nullptr : &it->second.span;
}

void SpanCollector::Push(uint64_t id) {
  if (id != 0) {
    stack_.push_back(id);
  }
}

void SpanCollector::Pop(uint64_t id) {
  if (id == 0 || stack_.empty()) {
    return;
  }
  if (stack_.back() == id) {
    stack_.pop_back();
    return;
  }
  // Unbalanced pop (a span outlived an enable/disable boundary): drop
  // the deepest matching entry rather than corrupting the stack.
  auto it = std::find(stack_.rbegin(), stack_.rend(), id);
  if (it != stack_.rend()) {
    stack_.erase(std::next(it).base());
  }
}

SpanContext SpanCollector::current() const {
  if (!enabled_ || stack_.empty()) {
    return SpanContext{};
  }
  auto it = open_.find(stack_.back());
  return it == open_.end() ? SpanContext{} : it->second.span.context();
}

void SpanCollector::RecordClosed(Span span, SpanContext parent) {
  if (!enabled_) {
    return;
  }
  span.id = next_id_++;
  if (parent.valid()) {
    span.parent_id = parent.span_id;
    span.trace_id = parent.trace_id != 0 ? parent.trace_id : parent.span_id;
  } else {
    span.parent_id = 0;
    span.trace_id = span.id;
  }
  Finish(std::move(span));
}

void SpanCollector::Finish(Span span) {
  if (finished_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  finished_.push_back(std::move(span));
}

std::vector<Span> SpanCollector::TakeFinished() {
  std::vector<Span> out;
  out.swap(finished_);
  return out;
}

void SpanCollector::EnableSlowOpLog(uint64_t threshold_ns, SlowOpSink sink) {
  slow_op_log_ = true;
  slow_threshold_ns_ = threshold_ns;
  slow_sink_ = std::move(sink);
}

void SpanCollector::MaybeLogSlowOp(const Span& root) {
  bool slow = slow_threshold_ns_ != 0 && root.duration_ns() >= slow_threshold_ns_;
  if (!slow) {
    // Retransmit / DRC trigger: scan the finished tree.  (Spans of
    // still-pending async work attached to this trace land after the
    // root closes and are not re-examined.)
    for (const Span& span : finished_) {
      if (span.trace_id == root.trace_id && (span.retransmits > 0 || span.drc_hit)) {
        slow = true;
        break;
      }
    }
  }
  if (!slow) {
    return;
  }
  ++slow_ops_logged_;
  std::string dump = FormatSpanTree(finished_, root.trace_id);
  if (slow_sink_) {
    slow_sink_(dump);
    return;
  }
  std::istringstream lines(dump);
  std::string line;
  while (std::getline(lines, line)) {
    SFS_LOG(kInfo) << "slow-op: " << line;
  }
}

// --- Critical-path analysis -------------------------------------------------

namespace {

std::vector<CriticalPathRow> SortRows(std::map<std::string, CriticalPathRow> by_name) {
  std::vector<CriticalPathRow> rows;
  rows.reserve(by_name.size());
  for (auto& [name, row] : by_name) {
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const CriticalPathRow& a, const CriticalPathRow& b) {
              return a.total_ns != b.total_ns ? a.total_ns > b.total_ns
                                              : a.name < b.name;
            });
  return rows;
}

void Accumulate(CriticalPathRow* row, const Span& span) {
  ++row->count;
  row->total_ns += span.duration_ns();
  for (size_t i = 0; i < kTimeCategoryCount; ++i) {
    row->cat_ns[i] += span.cat_ns[i];
  }
}

}  // namespace

std::vector<CriticalPathRow> CriticalPathByRoot(const std::vector<Span>& spans) {
  std::map<std::string, CriticalPathRow> by_name;
  for (const Span& span : spans) {
    if (span.parent_id != 0) {
      continue;
    }
    CriticalPathRow& row = by_name[span.name];
    row.name = span.name;
    Accumulate(&row, span);
  }
  return SortRows(std::move(by_name));
}

std::vector<CriticalPathRow> CriticalPathByName(const std::vector<Span>& spans,
                                                const char* layer) {
  std::map<std::string, CriticalPathRow> by_name;
  for (const Span& span : spans) {
    if (std::string_view(span.layer) != layer) {
      continue;
    }
    CriticalPathRow& row = by_name[span.name];
    row.name = span.name;
    Accumulate(&row, span);
  }
  return SortRows(std::move(by_name));
}

std::vector<Span> SpansOfTrace(const std::vector<Span>& spans, uint64_t trace_id) {
  std::vector<Span> out;
  for (const Span& span : spans) {
    if (span.trace_id == trace_id) {
      out.push_back(span);
    }
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    if ((a.parent_id == 0) != (b.parent_id == 0)) {
      return a.parent_id == 0;
    }
    return a.start_ns != b.start_ns ? a.start_ns < b.start_ns : a.id < b.id;
  });
  return out;
}

std::string FormatSpanTree(const std::vector<Span>& spans, uint64_t trace_id) {
  std::vector<Span> trace = SpansOfTrace(spans, trace_id);
  // Children by parent, already in start order from SpansOfTrace.
  std::map<uint64_t, std::vector<const Span*>> children;
  const Span* root = nullptr;
  for (const Span& span : trace) {
    if (span.parent_id == 0 && root == nullptr) {
      root = &span;
    } else {
      children[span.parent_id].push_back(&span);
    }
  }
  std::ostringstream out;
  std::function<void(const Span&, int)> render = [&](const Span& span, int depth) {
    for (int i = 0; i < depth; ++i) {
      out << "  ";
    }
    out << span.name;
    if (!span.detail.empty()) {
      out << " [" << span.detail << "]";
    }
    out << " " << span.duration_ns() / 1000 << "us"
        << " (" << span.start_ns / 1000 << "us..+" << span.duration_ns() / 1000
        << ")";
    if (span.retransmits > 0) {
      out << " retransmits=" << span.retransmits;
    }
    if (span.drc_hit) {
      out << " drc_hit";
    }
    if (span.error) {
      out << " error";
    }
    out << "\n";
    auto it = children.find(span.id);
    if (it != children.end()) {
      for (const Span* child : it->second) {
        render(*child, depth + 1);
      }
    }
  };
  if (root != nullptr) {
    render(*root, 0);
    // Orphans whose parent span was not captured (e.g. dropped at
    // capacity) still print, flat, so nothing is silently hidden.
    for (const Span& span : trace) {
      if (span.parent_id != 0 && span.id != root->id) {
        bool reachable = span.parent_id == root->id;
        for (const Span& other : trace) {
          if (other.id == span.parent_id) {
            reachable = true;
            break;
          }
        }
        if (!reachable) {
          out << "  (orphan) ";
          render(span, 0);
        }
      }
    }
  }
  return out.str();
}

// --- Perfetto / Chrome trace-event export -----------------------------------

namespace {

void AppendEscaped(std::ostringstream* out, std::string_view s) {
  *out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out << "\\\"";
        break;
      case '\\':
        *out << "\\\\";
        break;
      case '\n':
        *out << "\\n";
        break;
      case '\t':
        *out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out << buf;
        } else {
          *out << c;
        }
    }
  }
  *out << '"';
}

// Microsecond timestamp with nanosecond precision kept as decimals.
std::string Micros(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

}  // namespace

std::string ExportChromeTrace(const std::vector<Span>& spans) {
  return ExportChromeTrace(spans, nullptr);
}

std::string ExportChromeTrace(const std::vector<Span>& spans,
                              const Timeline* timeline) {
  // One Chrome "thread" per layer keeps each layer on its own track.
  std::map<std::string, int> layer_tids;
  for (const Span& span : spans) {
    layer_tids.emplace(span.layer, 0);
  }
  int next_tid = 1;
  for (auto& [layer, tid] : layer_tids) {
    tid = next_tid++;
  }

  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  out << "  {\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", "
         "\"args\": {\"name\": \"sfs-sim\"}}";
  for (const auto& [layer, tid] : layer_tids) {
    out << ",\n  {\"ph\": \"M\", \"pid\": 1, \"tid\": " << tid
        << ", \"name\": \"thread_name\", \"args\": {\"name\": ";
    AppendEscaped(&out, layer.empty() ? "(none)" : layer);
    out << "}}";
  }
  for (const Span& span : spans) {
    out << ",\n  {\"ph\": \"X\", \"pid\": 1, \"tid\": " << layer_tids[span.layer]
        << ", \"name\": ";
    AppendEscaped(&out, span.name);
    out << ", \"cat\": ";
    AppendEscaped(&out, std::string_view(span.layer).empty() ? "(none)" : span.layer);
    out << ", \"ts\": " << Micros(span.start_ns)
        << ", \"dur\": " << Micros(span.duration_ns()) << ", \"args\": {"
        << "\"trace_id\": " << span.trace_id << ", \"span_id\": " << span.id
        << ", \"parent_id\": " << span.parent_id;
    if (!span.detail.empty()) {
      out << ", \"detail\": ";
      AppendEscaped(&out, span.detail);
    }
    if (span.xid != 0) {
      out << ", \"xid\": " << span.xid;
    }
    if (span.seqno != 0) {
      out << ", \"seqno\": " << span.seqno;
    }
    if (span.wire_bytes != 0) {
      out << ", \"wire_bytes\": " << span.wire_bytes;
    }
    if (span.retransmits != 0) {
      out << ", \"retransmits\": " << span.retransmits;
    }
    if (span.drc_hit) {
      out << ", \"drc_hit\": true";
    }
    if (span.error) {
      out << ", \"error\": true";
    }
    for (size_t i = 0; i < kTimeCategoryCount; ++i) {
      if (span.cat_ns[i] != 0) {
        out << ", \"" << TimeCategoryName(static_cast<TimeCategory>(i))
            << "_ns\": " << span.cat_ns[i];
      }
    }
    out << "}}";
  }

  if (timeline != nullptr) {
    // Counter tracks: one "ph":"C" series per timeline track.  Rates and
    // utilization stamp the window *begin* (the value describes the whole
    // window); gauges stamp the window *end* (the value is the reading at
    // that edge).
    for (const Timeline::Window& w : timeline->windows()) {
      for (size_t i = 0; i < w.rates.size(); ++i) {
        out << ",\n  {\"ph\": \"C\", \"pid\": 1, \"name\": ";
        AppendEscaped(&out, timeline->rate_labels()[i] + "/s");
        out << ", \"ts\": " << Micros(w.begin_ns)
            << ", \"args\": {\"value\": " << w.rates[i].per_sec << "}}";
      }
      for (size_t i = 0; i < w.gauges.size(); ++i) {
        out << ",\n  {\"ph\": \"C\", \"pid\": 1, \"name\": ";
        AppendEscaped(&out, timeline->gauge_labels()[i]);
        out << ", \"ts\": " << Micros(w.end_ns)
            << ", \"args\": {\"value\": " << w.gauges[i] << "}}";
      }
      for (size_t i = 0; i < w.latency.size(); ++i) {
        out << ",\n  {\"ph\": \"C\", \"pid\": 1, \"name\": ";
        AppendEscaped(&out, timeline->latency_labels()[i] + ".p90_us");
        out << ", \"ts\": " << Micros(w.begin_ns)
            << ", \"args\": {\"value\": " << Micros(w.latency[i].p90_ns)
            << "}}";
      }
      // Stacked utilization: every nonzero category share in one counter
      // event, so Perfetto draws the window's time split as one area.
      out << ",\n  {\"ph\": \"C\", \"pid\": 1, \"name\": \"util\", \"ts\": "
          << Micros(w.begin_ns) << ", \"args\": {";
      bool first = true;
      for (size_t c = 0; c < kTimeCategoryCount; ++c) {
        if (w.util_ns[c] == 0) {
          continue;
        }
        out << (first ? "" : ", ") << "\""
            << TimeCategoryName(static_cast<TimeCategory>(c))
            << "\": " << w.UtilShare(c);
        first = false;
      }
      out << "}}";
    }
    // Episode annotations on their own track.
    const int episode_tid = 1000;
    out << ",\n  {\"ph\": \"M\", \"pid\": 1, \"tid\": " << episode_tid
        << ", \"name\": \"thread_name\", \"args\": {\"name\": "
           "\"timeline.episodes\"}}";
    for (const Timeline::Episode& ep : timeline->episodes()) {
      out << ",\n  {\"ph\": \"X\", \"pid\": 1, \"tid\": " << episode_tid
          << ", \"name\": ";
      AppendEscaped(&out, Timeline::EpisodeKindName(ep.kind));
      out << ", \"cat\": \"episode\", \"ts\": " << Micros(ep.begin_ns)
          << ", \"dur\": " << Micros(ep.end_ns - ep.begin_ns)
          << ", \"args\": {\"windows\": " << ep.window_count
          << ", \"cause\": ";
      AppendEscaped(&out, ep.cause);
      out << "}}";
    }
  }

  out << "\n]}\n";
  return out.str();
}

bool WriteChromeTrace(const std::string& path, const std::vector<Span>& spans) {
  return WriteChromeTrace(path, spans, nullptr);
}

bool WriteChromeTrace(const std::string& path, const std::vector<Span>& spans,
                      const Timeline* timeline) {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file) {
    return false;
  }
  file << ExportChromeTrace(spans, timeline);
  return static_cast<bool>(file);
}

}  // namespace obs
