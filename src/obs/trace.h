// Structured RPC tracing: the paper stresses debuggability ("Our RPC
// library can pretty-print RPC traffic for debugging purposes").  The
// RPC layers (rpc::Client, rpc::Dispatcher, sfs::MountPoint,
// sfs::ServerConnection) emit one TraceEvent per wire-visible step —
// call sent, retransmission, stale reply discarded, reply delivered,
// server dispatch, duplicate-request-cache replay — into whatever sinks
// are registered on the owning registry's Tracer.
//
// Two sinks ship here: RingBufferSink keeps the last N events for test
// inspection (the exactly-once proofs read it), and PrettyPrintSink
// formats one line per event through util::log, realizing the paper's
// pretty-printer.  Emission is skipped entirely while no sink is
// registered, so tracing costs one branch when off.
#ifndef SFS_SRC_OBS_TRACE_H_
#define SFS_SRC_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/log.h"

namespace obs {

class Counter;
class Registry;

struct TraceEvent {
  enum class Kind : uint8_t {
    kClientCall,        // First transmission of a call.
    kClientRetransmit,  // Same call resent (stale or lost reply).
    kClientStaleReply,  // Reply discarded above the link (wrong xid /
                        // keystream position); a retransmit follows.
    kClientReply,       // Matching reply delivered to the application.
    kServerDispatch,    // Handler executed for this request.
    kServerReply,       // Reply left the server (fresh execution).
    kServerDrcHit,      // Retransmit answered from the duplicate-request
                        // cache; the handler did NOT run again.
  };

  Kind kind = Kind::kClientCall;
  const char* layer = "";       // "rpc" (plain Sun-RPC) or "sfs.chan".
  uint32_t prog = 0;
  uint32_t proc = 0;
  std::string proc_name;        // Via the program's proc-name resolver.
  uint32_t xid = 0;
  uint32_t seqno = 0;           // Wire-level seqno (keys the DRC).
  uint64_t wire_bytes = 0;      // Size of the message on the wire.
  uint64_t t_send_ns = 0;       // Virtual time the call was (re)sent.
  uint64_t t_recv_ns = 0;       // Virtual time of receipt (reply events).
  uint32_t attempt = 0;         // Retransmission number; 0 = first copy.
  bool drc_hit = false;         // Server answered from its reply cache.
  std::string note;             // Free-form detail (error text, etc).
};

const char* TraceEventKindName(TraceEvent::Kind kind);

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnEvent(const TraceEvent& event) = 0;
};

// Keeps the most recent `capacity` events; older ones are overwritten.
// Not thread-safe (the simulation is single-threaded; see
// docs/OBSERVABILITY.md for the concurrency story).
class RingBufferSink : public TraceSink {
 public:
  explicit RingBufferSink(size_t capacity = 4096);
  // Also publishes overwrites to the registry's "trace.ring.dropped"
  // counter, so exactly-once proofs can assert no events were lost
  // without holding the sink itself.
  RingBufferSink(size_t capacity, Registry* registry);

  void OnEvent(const TraceEvent& event) override;

  // Oldest-first copy of the retained events.
  std::vector<TraceEvent> Events() const;
  uint64_t total_events() const { return total_; }
  uint64_t dropped() const {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }
  void Clear();

 private:
  size_t capacity_;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;     // Overwrite position once the ring is full.
  uint64_t total_ = 0;  // Events ever seen.
  Counter* dropped_counter_ = nullptr;  // "trace.ring.dropped", optional.
};

// Pretty-prints each event as one log line at the given level.  Enable
// with util::SetLogLevel(util::LogLevel::kDebug) + sink registration.
class PrettyPrintSink : public TraceSink {
 public:
  explicit PrettyPrintSink(util::LogLevel level = util::LogLevel::kDebug)
      : level_(level) {}

  void OnEvent(const TraceEvent& event) override;

  static std::string Format(const TraceEvent& event);

 private:
  util::LogLevel level_;
};

// Fan-out point the instrumented layers emit through.  Sinks are
// borrowed, not owned; unregister before destroying a sink.
class Tracer {
 public:
  void AddSink(TraceSink* sink);
  void RemoveSink(TraceSink* sink);

  // Fast path: emitting layers check this before building a TraceEvent.
  bool active() const { return !sinks_.empty(); }

  void Emit(const TraceEvent& event) {
    for (TraceSink* sink : sinks_) {
      sink->OnEvent(event);
    }
  }

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace obs

#endif  // SFS_SRC_OBS_TRACE_H_
