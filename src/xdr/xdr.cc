#include "src/xdr/xdr.h"

namespace xdr {
namespace {
// Opaque items longer than this are rejected as malformed (our largest
// legitimate payloads are NFS READ/WRITE buffers well under this).
constexpr uint32_t kMaxOpaque = 1u << 26;  // 64 MiB
}  // namespace

void Encoder::PutUint32(uint32_t v) {
  buffer_.push_back(static_cast<uint8_t>(v >> 24));
  buffer_.push_back(static_cast<uint8_t>(v >> 16));
  buffer_.push_back(static_cast<uint8_t>(v >> 8));
  buffer_.push_back(static_cast<uint8_t>(v));
}

void Encoder::PutUint64(uint64_t v) {
  PutUint32(static_cast<uint32_t>(v >> 32));
  PutUint32(static_cast<uint32_t>(v));
}

void Encoder::PutOpaque(const util::Bytes& data) {
  PutUint32(static_cast<uint32_t>(data.size()));
  PutFixedOpaque(data);
}

void Encoder::PutString(const std::string& s) { PutOpaque(util::BytesOf(s)); }

void Encoder::PutFixedOpaque(const util::Bytes& data) {
  util::Append(&buffer_, data);
  // XDR pads each item to a multiple of 4 *of its own length* — padding
  // to the buffer position instead would mis-frame the item whenever the
  // encoder is not already 4-aligned.
  for (size_t i = data.size(); i % 4 != 0; ++i) {
    buffer_.push_back(0);
  }
}

util::Result<uint32_t> Decoder::GetUint32() {
  if (pos_ + 4 > buffer_.size()) {
    return util::InvalidArgument("XDR: truncated uint32");
  }
  uint32_t v = (static_cast<uint32_t>(buffer_[pos_]) << 24) |
               (static_cast<uint32_t>(buffer_[pos_ + 1]) << 16) |
               (static_cast<uint32_t>(buffer_[pos_ + 2]) << 8) |
               static_cast<uint32_t>(buffer_[pos_ + 3]);
  pos_ += 4;
  return v;
}

util::Result<int32_t> Decoder::GetInt32() {
  ASSIGN_OR_RETURN(uint32_t v, GetUint32());
  return static_cast<int32_t>(v);
}

util::Result<uint64_t> Decoder::GetUint64() {
  ASSIGN_OR_RETURN(uint32_t hi, GetUint32());
  ASSIGN_OR_RETURN(uint32_t lo, GetUint32());
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

util::Result<bool> Decoder::GetBool() {
  ASSIGN_OR_RETURN(uint32_t v, GetUint32());
  if (v > 1) {
    return util::InvalidArgument("XDR: bool out of range");
  }
  return v == 1;
}

util::Result<util::Bytes> Decoder::GetOpaque() {
  ASSIGN_OR_RETURN(uint32_t len, GetUint32());
  if (len > kMaxOpaque) {
    return util::InvalidArgument("XDR: opaque too large");
  }
  return GetFixedOpaque(len);
}

util::Result<std::string> Decoder::GetString() {
  ASSIGN_OR_RETURN(util::Bytes b, GetOpaque());
  return util::StringOf(b);
}

util::Result<util::Bytes> Decoder::GetFixedOpaque(size_t len) {
  size_t padded = (len + 3) & ~size_t{3};
  if (pos_ + padded > buffer_.size()) {
    return util::InvalidArgument("XDR: truncated opaque");
  }
  util::Bytes out(buffer_.begin() + static_cast<long>(pos_),
                  buffer_.begin() + static_cast<long>(pos_ + len));
  // Padding bytes must be zero.
  for (size_t i = len; i < padded; ++i) {
    if (buffer_[pos_ + i] != 0) {
      return util::InvalidArgument("XDR: nonzero padding");
    }
  }
  pos_ += padded;
  return out;
}

}  // namespace xdr
