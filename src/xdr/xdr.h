// XDR (RFC 1832) marshaling, the wire representation for everything SFS.
//
// The paper (§3.2): "All programs communicate with Sun RPC ... Any data
// that SFS hashes, signs, or public-key encrypts is defined as an XDR
// data structure; SFS computes the hash or public key function on the
// raw, marshaled bytes."  This module provides the encoder/decoder those
// layers share.  Quantities are big-endian; variable-length items are
// length-prefixed and padded to 4-byte alignment.
#ifndef SFS_SRC_XDR_XDR_H_
#define SFS_SRC_XDR_XDR_H_

#include <cstdint>
#include <string>

#include "src/util/bytes.h"
#include "src/util/status.h"

namespace xdr {

class Encoder {
 public:
  Encoder() = default;

  void PutUint32(uint32_t v);
  void PutInt32(int32_t v) { PutUint32(static_cast<uint32_t>(v)); }
  void PutUint64(uint64_t v);
  void PutBool(bool v) { PutUint32(v ? 1 : 0); }

  // Variable-length opaque: 4-byte length, data, zero padding to 4 bytes.
  void PutOpaque(const util::Bytes& data);
  void PutString(const std::string& s);

  // Fixed-length opaque: data plus padding, no length prefix.
  void PutFixedOpaque(const util::Bytes& data);

  const util::Bytes& data() const { return buffer_; }
  util::Bytes Take() { return std::move(buffer_); }

 private:
  util::Bytes buffer_;
};

class Decoder {
 public:
  explicit Decoder(util::Bytes data) : buffer_(std::move(data)) {}

  util::Result<uint32_t> GetUint32();
  util::Result<int32_t> GetInt32();
  util::Result<uint64_t> GetUint64();
  util::Result<bool> GetBool();
  util::Result<util::Bytes> GetOpaque();
  util::Result<std::string> GetString();
  util::Result<util::Bytes> GetFixedOpaque(size_t len);

  // True when every byte has been consumed; protocols check this to
  // reject trailing garbage.
  bool AtEnd() const { return pos_ >= buffer_.size(); }
  size_t Remaining() const { return buffer_.size() - pos_; }

  // Consumes and returns all unread bytes (no length prefix): lets a
  // framing layer peel its header and hand the payload onward.
  util::Bytes TakeRemaining() {
    util::Bytes out(buffer_.begin() + static_cast<long>(pos_), buffer_.end());
    pos_ = buffer_.size();
    return out;
  }

 private:
  util::Bytes buffer_;
  size_t pos_ = 0;
};

}  // namespace xdr

#endif  // SFS_SRC_XDR_XDR_H_
