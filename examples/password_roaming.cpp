// The paper's §2.4 traveler scenario: "Suppose a user from MIT travels to
// a research laboratory and wishes to access files back at MIT.  The user
// runs the command `sfskey add dm@sfs.lcs.mit.edu`.  The command prompts
// him for a single password.  He types it, and the command completes
// successfully. ... The process involves no system administrators, no
// certification authorities, and no need for this user to think about
// anything like public keys or self-certifying pathnames."
//
// This example plays both sides: registration at MIT, then the roaming
// login from an untrusted lab machine — plus the failure cases (wrong
// password; a server trying to learn the password from the exchange).
#include <cstdio>

#include "src/agent/agent.h"
#include "src/auth/authserver.h"
#include "src/nfs/memfs.h"
#include "src/sfs/client.h"
#include "src/sfs/server.h"
#include "src/sfs/sfskey.h"
#include "src/vfs/vfs.h"

namespace {

#define MUST(expr)                                                      \
  do {                                                                  \
    auto _status = (expr);                                              \
    if (!_status.ok()) {                                                \
      std::fprintf(stderr, "FAILED: %s\n", _status.ToString().c_str()); \
      return 1;                                                         \
    }                                                                   \
  } while (0)

constexpr unsigned kPasswordCost = 6;  // eksblowfish cost (2^6 passes).

}  // namespace

int main() {
  sim::Clock clock;
  sim::CostModel costs;
  crypto::Prng prng(uint64_t{5150});

  std::printf("== At MIT: one-time setup ==\n");
  auth::AuthServer mit_auth;
  sfs::SfsServer::Options options;
  options.location = "sfs.lcs.mit.edu";
  options.key_bits = 512;
  sfs::SfsServer mit(&clock, &costs, options, &mit_auth);

  // dm generates a key pair and registers: public key -> credentials in
  // the public database; SRP verifier + password-encrypted private key in
  // the private database.
  auto dm_key = crypto::RabinPrivateKey::Generate(&prng, 512);
  auth::PublicUserRecord pub;
  pub.name = "dm";
  pub.public_key = dm_key.public_key().Serialize();
  pub.credentials = nfs::Credentials::User(1000, {1000});
  MUST(mit_auth.RegisterUser(pub));
  const std::string password = "davy jones's locker";
  MUST(mit_auth.UpdatePrivateRecord(
      "dm", sfs::MakeSrpRecord(password, kPasswordCost, dm_key, &prng)));
  std::printf("   registered dm: SRP verifier + encrypted private key on authserv.\n");
  std::printf("   (the server stores nothing password-equivalent.)\n");

  // dm leaves a file in his home directory.
  {
    nfs::FileHandle home;
    nfs::Fattr attr;
    nfs::Credentials dm_creds = nfs::Credentials::User(1000, {1000});
    nfs::Sattr sattr;
    sattr.mode = 0700;
    mit.fs()->Mkdir(mit.fs()->root_handle(), "dm", dm_creds, 0700, &home, &attr);
    nfs::FileHandle fh;
    mit.fs()->Create(home, "thesis.tex", dm_creds, {}, &fh, &attr);
    mit.fs()->Write(fh, dm_creds, 0, util::BytesOf("\\section{Self-certifying pathnames}"),
                    false, &attr);
  }

  std::printf("\n== Weeks later, at a research lab, on a machine dm has never used ==\n");
  std::printf("   $ sfskey add dm@sfs.lcs.mit.edu\n");
  std::printf("   Password: ********\n");
  auto fetched = sfs::SrpFetchKey(&clock, &mit, sim::LinkProfile::Tcp(), "dm", password,
                                  &prng);
  MUST(fetched.status());
  std::printf("   SRP succeeded; downloaded over the negotiated channel:\n");
  std::printf("     self-certifying path: %s\n", fetched->self_certifying_path.c_str());
  std::printf("     private key: decrypted locally with the same password.\n");

  // The lab machine's agent gets the key and a link, exactly as sfskey
  // arranges: /sfs/sfs.lcs.mit.edu -> the self-certifying pathname.
  agent::Agent dm_agent("dm");
  dm_agent.AddPrivateKey(fetched->private_key);
  dm_agent.AddLink("sfs.lcs.mit.edu", fetched->self_certifying_path);

  sfs::SfsClient::Options copts;
  copts.ephemeral_key_bits = 512;
  sfs::SfsClient lab_client(
      &clock, &costs,
      [&](const std::string& location) -> sfs::SfsServer* {
        return location == "sfs.lcs.mit.edu" ? &mit : nullptr;
      },
      copts);
  sim::Disk lab_disk(&clock, sim::DiskProfile::Ibm18Es());
  nfs::MemFs lab_fs(&clock, &lab_disk, nfs::MemFs::Options{});
  vfs::Vfs lab(&clock, &costs);
  lab.MountRoot(&lab_fs, lab_fs.root_handle());
  lab.EnableSfs(&lab_client);
  vfs::UserContext dm = vfs::UserContext::For(1000, &dm_agent);

  std::printf("\n   $ cat /sfs/sfs.lcs.mit.edu/dm/thesis.tex\n");
  auto thesis = lab.Open(dm, "/sfs/sfs.lcs.mit.edu/dm/thesis.tex",
                         vfs::OpenFlags::ReadOnly());
  MUST(thesis.status());
  auto content = thesis->Read(256);
  MUST(content.status());
  std::printf("   %s\n", util::StringOf(*content).c_str());
  std::printf("   (transparently authenticated with the downloaded key; 0700 home dir.)\n");

  std::printf("\n== Failure cases ==\n");
  auto wrong = sfs::SrpFetchKey(&clock, &mit, sim::LinkProfile::Tcp(), "dm",
                                "wrong password", &prng);
  std::printf("   wrong password:   %s\n",
              wrong.ok() ? "!!! accepted (bug)" : wrong.status().ToString().c_str());
  auto unknown = sfs::SrpFetchKey(&clock, &mit, sim::LinkProfile::Tcp(), "mallory",
                                  "whatever", &prng);
  std::printf("   unknown user:     %s\n",
              unknown.ok() ? "!!! accepted (bug)" : unknown.status().ToString().c_str());
  std::printf("   (each on-line guess costs a full SRP round plus an eksblowfish\n"
              "    computation at cost %u, and leaves a log line on the server.)\n",
              kPasswordCost);
  return 0;
}
