// "Students running file servers in dorm rooms" (paper §1): deployment
// with zero authorities.
//
// Two students each run a server.  They share files with each other
// across administrative realms using nothing but pathnames: secure
// bookmarks, secure links from one server to the other, and an exchanged
// HostID.  An eavesdropping/tampering dorm network gains nothing.
#include <cstdio>

#include "src/agent/agent.h"
#include "src/auth/authserver.h"
#include "src/nfs/memfs.h"
#include "src/sfs/client.h"
#include "src/sfs/server.h"
#include "src/vfs/vfs.h"

namespace {

#define MUST(expr)                                                      \
  do {                                                                  \
    auto _status = (expr);                                              \
    if (!_status.ok()) {                                                \
      std::fprintf(stderr, "FAILED: %s\n", _status.ToString().c_str()); \
      return 1;                                                         \
    }                                                                   \
  } while (0)

// The dorm network: hostile by assumption.
class NosyNetwork : public sim::Interposer {
 public:
  util::Result<util::Bytes> OnRequest(util::Bytes request) override {
    bytes_seen_ += request.size();
    if (tamper_) {
      request[request.size() / 2] ^= 0x20;
    }
    return request;
  }
  void StartTampering() { tamper_ = true; }
  void StopTampering() { tamper_ = false; }
  uint64_t bytes_seen() const { return bytes_seen_; }

 private:
  bool tamper_ = false;
  uint64_t bytes_seen_ = 0;
};

}  // namespace

int main() {
  sim::Clock clock;
  sim::CostModel costs;
  crypto::Prng prng(uint64_t{42});

  std::printf("== Two students, two dorm rooms, zero paperwork ==\n");
  auth::AuthServer ken_auth;
  auth::AuthServer ada_auth;
  sfs::SfsServer::Options o1;
  o1.location = "ken.dorm.mit.edu";
  o1.key_bits = 512;
  o1.prng_seed = 11;
  sfs::SfsServer ken_server(&clock, &costs, o1, &ken_auth);
  sfs::SfsServer::Options o2;
  o2.location = "ada.dorm.mit.edu";
  o2.key_bits = 512;
  o2.prng_seed = 22;
  sfs::SfsServer ada_server(&clock, &costs, o2, &ada_auth);
  std::printf("   ken: %s\n   ada: %s\n", ken_server.Path().FullPath().c_str(),
              ada_server.Path().FullPath().c_str());

  // Each registers themselves (and each other, as guests) locally.
  auto ken_key = crypto::RabinPrivateKey::Generate(&prng, 512);
  auto ada_key = crypto::RabinPrivateKey::Generate(&prng, 512);
  auto add_user = [](auth::AuthServer* db, const std::string& name,
                     const crypto::RabinPrivateKey& key, uint32_t uid) {
    auth::PublicUserRecord r;
    r.name = name;
    r.public_key = key.public_key().Serialize();
    r.credentials = nfs::Credentials::User(uid, {uid});
    return db->RegisterUser(r);
  };
  MUST(add_user(&ken_auth, "ken", ken_key, 1001));
  MUST(add_user(&ken_auth, "ada", ada_key, 1002));  // Guest account for ada.
  MUST(add_user(&ada_auth, "ada", ada_key, 500));   // Different realms,
  MUST(add_user(&ada_auth, "ken", ken_key, 501));   // different uids: fine.

  std::printf("\n== Ada's laptop mounts both servers over a hostile network ==\n");
  NosyNetwork dorm_net;
  sfs::SfsClient::Options copts;
  copts.ephemeral_key_bits = 512;
  sfs::SfsClient laptop(
      &clock, &costs,
      [&](const std::string& location) -> sfs::SfsServer* {
        if (location == "ken.dorm.mit.edu") {
          return &ken_server;
        }
        if (location == "ada.dorm.mit.edu") {
          return &ada_server;
        }
        return nullptr;
      },
      copts);
  laptop.set_interposer(&dorm_net);

  sim::Disk disk(&clock, sim::DiskProfile::Ibm18Es());
  nfs::MemFs local(&clock, &disk, nfs::MemFs::Options{});
  vfs::Vfs vfs(&clock, &costs);
  vfs.MountRoot(&local, local.root_handle());
  vfs.EnableSfs(&laptop);

  agent::Agent ada_agent("ada");
  ada_agent.AddPrivateKey(ada_key);
  // Secure bookmarks: short names for both machines.
  ada_agent.AddLink("ken", ken_server.Path().FullPath());
  ada_agent.AddLink("home", ada_server.Path().FullPath());
  vfs::UserContext ada = vfs::UserContext::For(500, &ada_agent);

  MUST(vfs.Mkdir(ada, "/sfs/home/music"));
  auto song = vfs.Open(ada, "/sfs/home/music/mixtape.txt", vfs::OpenFlags::CreateRw());
  MUST(song.status());
  MUST(song->Write(util::BytesOf("side A: daft punk around the world")));
  MUST(song->Close());
  std::printf("   ada wrote /sfs/home/music/mixtape.txt on her own server.\n");

  // Cross-realm sharing: ada leaves a secure link on ken's server
  // pointing at her music directory.  ken follows it; both hops are
  // certified by their pathnames.
  auto drop = vfs.Open(ada, "/sfs/ken/for-ken.txt", vfs::OpenFlags::CreateRw(0644));
  MUST(drop.status());
  MUST(drop->Write(util::BytesOf("grab the mixtape from my server")));
  MUST(drop->Close());
  MUST(vfs.Symlink(ada, ada_server.Path().FullPath() + "/music", "/sfs/ken/ada-music"));
  std::printf("   ada authenticated to ken's server as a guest and left a secure link.\n");

  auto mix = vfs.Open(ada, "/sfs/ken/ada-music/mixtape.txt", vfs::OpenFlags::ReadOnly());
  MUST(mix.status());
  auto content = mix->Read(100);
  MUST(content.status());
  std::printf("   following ken-server link back to ada's server: \"%s\"\n",
              util::StringOf(*content).c_str());

  std::printf("\n== The dorm network saw %llu bytes — none of them plaintext ==\n",
              static_cast<unsigned long long>(dorm_net.bytes_seen()));

  std::printf("\n== And when it starts tampering, sessions die, not data ==\n");
  // (A cached read would be served locally, untouched by the network —
  // so force an operation that must cross the wire.)
  dorm_net.StartTampering();
  util::Status attacked = vfs.Mkdir(ada, "/sfs/home/under-attack");
  std::printf("   mkdir under tampering: %s\n",
              attacked.ok() ? "!!! succeeded (bug)" : attacked.ToString().c_str());
  dorm_net.StopTampering();
  return 0;
}
