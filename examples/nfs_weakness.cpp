// Why SFS exists: the attacks that work on plain NFS 3 and fail on SFS.
//
// The paper's motivation (§1, §3.3): NFS trusts wire credentials, its
// traffic is plaintext, and "an attacker who learns the file handle of
// even a single directory can access any part of the file system as any
// user."  This example mounts the same file server both ways and runs
// the attacks against each.
#include <cstdio>

#include "src/agent/agent.h"
#include "src/auth/authserver.h"
#include "src/nfs/client.h"
#include "src/nfs/memfs.h"
#include "src/nfs/program.h"
#include "src/rpc/rpc.h"
#include "src/sfs/client.h"
#include "src/sfs/server.h"

namespace {

// A passive wiretap that records everything and scans for a needle.
class Wiretap : public sim::Interposer {
 public:
  util::Result<util::Bytes> OnRequest(util::Bytes request) override {
    util::Append(&capture_, request);
    return request;
  }
  util::Result<util::Bytes> OnResponse(util::Bytes response) override {
    util::Append(&capture_, response);
    return response;
  }
  bool Contains(const std::string& needle) const {
    auto it = std::search(capture_.begin(), capture_.end(), needle.begin(), needle.end());
    return it != capture_.end();
  }
  size_t captured() const { return capture_.size(); }

 private:
  util::Bytes capture_;
};

}  // namespace

int main() {
  sim::Clock clock;
  sim::CostModel costs;
  const std::string kSecret = "TOP-SECRET payroll data";

  std::printf("== Attack 1: forged AUTH_UNIX credentials ==\n");
  {
    sim::Disk disk(&clock, sim::DiskProfile::Ibm18Es());
    nfs::MemFs fs(&clock, &disk, nfs::MemFs::Options{});
    nfs::NfsProgram program(&fs, &clock, &costs);
    rpc::Dispatcher dispatcher;
    dispatcher.RegisterProgram(nfs::kNfsProgram,
                               [&](uint32_t proc, const util::Bytes& args) {
                                 return program.HandleWire(proc, args);
                               });
    sim::Link link(&clock, sim::LinkProfile::Udp(), &dispatcher);
    rpc::LinkTransport transport(&link);
    rpc::Client rpc_client(&transport, nfs::kNfsProgram);
    nfs::NfsClient client([&](uint32_t proc, const util::Bytes& args) {
                            return rpc_client.Call(proc, args);
                          },
                          nfs::NfsClient::WireCredentialsEncoder());

    // Alice stores a 0600 file.
    nfs::Credentials alice = nfs::Credentials::User(1000, {1000});
    nfs::FileHandle fh;
    nfs::Fattr attr;
    nfs::Sattr mode;
    mode.mode = 0600;
    client.Create(fs.root_handle(), "payroll", alice, mode, &fh, &attr);
    client.Write(fh, alice, 0, util::BytesOf(kSecret), false, &attr);

    // Mallory just *claims* to be root in the RPC header.
    nfs::Credentials forged_root = nfs::Credentials::User(0);
    util::Bytes loot;
    bool eof = false;
    nfs::Stat s = client.Read(fh, forged_root, 0, 100, &loot, &eof);
    std::printf("   NFS 3: read with forged uid-0 credentials -> %s\n",
                s == nfs::Stat::kOk ? "SUCCEEDS (full compromise)" : nfs::StatName(s));
  }
  {
    auth::AuthServer authserver;
    sfs::SfsServer::Options so;
    so.location = "sfs.example.org";
    so.key_bits = 512;
    sfs::SfsServer server(&clock, &costs, so, &authserver);
    crypto::Prng prng(uint64_t{1});
    auto alice_key = crypto::RabinPrivateKey::Generate(&prng, 512);
    auth::PublicUserRecord rec;
    rec.name = "alice";
    rec.public_key = alice_key.public_key().Serialize();
    rec.credentials = nfs::Credentials::User(1000, {1000});
    authserver.RegisterUser(rec);

    sfs::SfsClient::Options co;
    co.ephemeral_key_bits = 512;
    sfs::SfsClient client(&clock, &costs, [&](const std::string&) { return &server; }, co);
    auto mount = client.Mount(server.Path());
    agent::Agent alice_agent("alice");
    alice_agent.AddPrivateKey(alice_key);
    (*mount)->Authenticate(1000, [&](const util::Bytes& info, uint32_t seq) {
      return alice_agent.SignAuthRequest(0, info, seq);
    });
    nfs::Credentials alice = nfs::Credentials::User(1000, {1000});
    nfs::FileHandle fh;
    nfs::Fattr attr;
    nfs::Sattr mode;
    mode.mode = 0600;
    (*mount)->fs()->Create((*mount)->root_fh(), "payroll", alice, mode, &fh, &attr);
    (*mount)->fs()->Write(fh, alice, 0, util::BytesOf(kSecret), false, &attr);

    // On an SFS client the kernel stamps mallory's *real* uid on every
    // request; over the wire she is just authno 0 (anonymous), because
    // she cannot sign alice's authentication request.  (Being root on the
    // client is outside the threat model: "users trust the clients they
    // use".)
    nfs::Credentials mallory = nfs::Credentials::User(666);
    util::Bytes loot;
    bool eof = false;
    nfs::Stat s = (*mount)->fs()->Read(fh, mallory, 0, 100, &loot, &eof);
    std::printf("   SFS:   same attack -> %s (credentials come from the\n"
                "          authserver-validated signature, not the wire)\n",
                s == nfs::Stat::kOk ? "!!! SUCCEEDS (bug)" : nfs::StatName(s));
  }

  std::printf("\n== Attack 2: a passive wiretap ==\n");
  {
    sim::Disk disk(&clock, sim::DiskProfile::Ibm18Es());
    nfs::MemFs fs(&clock, &disk, nfs::MemFs::Options{});
    nfs::NfsProgram program(&fs, &clock, &costs);
    rpc::Dispatcher dispatcher;
    dispatcher.RegisterProgram(nfs::kNfsProgram,
                               [&](uint32_t proc, const util::Bytes& args) {
                                 return program.HandleWire(proc, args);
                               });
    sim::Link link(&clock, sim::LinkProfile::Udp(), &dispatcher);
    Wiretap tap;
    link.set_interposer(&tap);
    rpc::LinkTransport transport(&link);
    rpc::Client rpc_client(&transport, nfs::kNfsProgram);
    nfs::NfsClient client([&](uint32_t proc, const util::Bytes& args) {
                            return rpc_client.Call(proc, args);
                          },
                          nfs::NfsClient::WireCredentialsEncoder());
    nfs::Credentials alice = nfs::Credentials::User(1000, {1000});
    nfs::FileHandle fh;
    nfs::Fattr attr;
    client.Create(fs.root_handle(), "diary", alice, {}, &fh, &attr);
    client.Write(fh, alice, 0, util::BytesOf(kSecret), false, &attr);
    std::printf("   NFS 3: wiretap captured %zu bytes; secret visible in cleartext: %s\n",
                tap.captured(), tap.Contains(kSecret) ? "YES" : "no");
  }
  {
    auth::AuthServer authserver;
    sfs::SfsServer::Options so;
    so.location = "sfs.example.org";
    so.key_bits = 512;
    so.prng_seed = 9;
    sfs::SfsServer server(&clock, &costs, so, &authserver);
    sfs::SfsClient::Options co;
    co.ephemeral_key_bits = 512;
    co.prng_seed = 10;
    sfs::SfsClient client(&clock, &costs, [&](const std::string&) { return &server; }, co);
    Wiretap tap;
    client.set_interposer(&tap);
    auto mount = client.Mount(server.Path());
    nfs::Credentials anon = nfs::Credentials::User(1000, {1000});
    nfs::FileHandle fh;
    nfs::Fattr attr;
    (*mount)->fs()->Create((*mount)->root_fh(), "diary", anon, {}, &fh, &attr);
    (*mount)->fs()->Write(fh, anon, 0, util::BytesOf(kSecret), false, &attr);
    std::printf("   SFS:   wiretap captured %zu bytes; secret visible in cleartext: %s\n",
                tap.captured(), tap.Contains(kSecret) ? "!!! YES (bug)" : "no");
  }

  std::printf("\n== Attack 3: file-handle structure ==\n");
  {
    sim::Clock c2;
    sim::Disk disk(&c2, sim::DiskProfile::Ibm18Es());
    nfs::MemFs fs(&c2, &disk, nfs::MemFs::Options{});
    nfs::FileHandle root = fs.root_handle();
    std::printf("   NFS 3 root handle:  %s\n", util::HexEncode(root).c_str());
    std::printf("     -> structured (fsid | fileid | generation | secret): an attacker\n"
                "        who sees or guesses one handle owns the export.\n");

    auth::AuthServer authserver;
    sfs::SfsServer::Options so;
    so.location = "sfs.example.org";
    so.key_bits = 512;
    so.prng_seed = 11;
    sfs::SfsServer server(&c2, &costs, so, &authserver);
    sfs::SfsClient::Options co;
    co.ephemeral_key_bits = 512;
    co.prng_seed = 12;
    sfs::SfsClient client(&c2, &costs, [&](const std::string&) { return &server; }, co);
    auto mount = client.Mount(server.Path());
    std::printf("   SFS root handle:    %s\n",
                util::HexEncode((*mount)->root_fh()).c_str());
    std::printf("     -> Blowfish-CBC of the NFS handle: SFS \"make[s] their file handles\n"
                "        publicly available to anonymous clients\" safely (paper 3.3).\n");
  }
  return 0;
}
