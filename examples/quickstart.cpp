// Quickstart: stand up an SFS server, mount it by self-certifying
// pathname, and watch the security properties work.
//
//   cmake --build build && ./build/examples/quickstart
//
// This walks the paper's core loop: a server with nothing but a key pair
// and a DNS name is instantly nameable — and certifiable — by any client
// in the world, with no key-management infrastructure.
#include <cinttypes>
#include <cstdio>

#include "src/agent/agent.h"
#include "src/auth/authserver.h"
#include "src/nfs/memfs.h"
#include "src/sfs/client.h"
#include "src/sfs/server.h"
#include "src/vfs/vfs.h"

namespace {

void Say(const char* msg) { std::printf("%s\n", msg); }

template <typename... Args>
void Sayf(const char* fmt, Args... args) {
  std::printf(fmt, args...);
  std::printf("\n");
}

#define MUST(expr)                                                   \
  do {                                                               \
    auto _status = (expr);                                           \
    if (!_status.ok()) {                                             \
      std::fprintf(stderr, "FAILED: %s\n", _status.ToString().c_str()); \
      return 1;                                                      \
    }                                                                \
  } while (0)

}  // namespace

int main() {
  sim::Clock clock;
  sim::CostModel costs;

  Say("== 1. Anyone can run a server: generate a key, pick a name ==");
  auth::AuthServer authserver;
  sfs::SfsServer::Options server_options;
  server_options.location = "dorm-room-pc.mit.edu";
  server_options.key_bits = 512;
  sfs::SfsServer server(&clock, &costs, server_options, &authserver);
  Sayf("   server's self-certifying pathname:\n   %s", server.Path().FullPath().c_str());

  Say("\n== 2. Register a user with the server's authserver ==");
  crypto::Prng prng(uint64_t{2024});
  auto user_key = crypto::RabinPrivateKey::Generate(&prng, 512);
  auth::PublicUserRecord record;
  record.name = "alice";
  record.public_key = user_key.public_key().Serialize();
  record.credentials = nfs::Credentials::User(1000, {1000});
  MUST(authserver.RegisterUser(record));
  Say("   alice's public key now maps to uid 1000 on the server.");

  Say("\n== 3. A client machine mounts it transparently through /sfs ==");
  sfs::SfsClient::Options client_options;
  client_options.ephemeral_key_bits = 512;
  sfs::SfsClient client(
      &clock, &costs,
      [&](const std::string& location) -> sfs::SfsServer* {
        return location == "dorm-room-pc.mit.edu" ? &server : nullptr;
      },
      client_options);

  sim::Disk local_disk(&clock, sim::DiskProfile::Ibm18Es());
  nfs::MemFs local_fs(&clock, &local_disk, nfs::MemFs::Options{});
  vfs::Vfs vfs(&clock, &costs);
  vfs.MountRoot(&local_fs, local_fs.root_handle());
  vfs.EnableSfs(&client);

  agent::Agent alice_agent("alice");
  alice_agent.AddPrivateKey(user_key);
  vfs::UserContext alice = vfs::UserContext::For(1000, &alice_agent);

  std::string home = server.Path().FullPath();
  auto file = vfs.Open(alice, home + "/notes.txt", vfs::OpenFlags::CreateRw(0600));
  MUST(file.status());
  MUST(file->Write(util::BytesOf("the namespace is the key infrastructure")));
  MUST(file->Close());
  Sayf("   wrote %s/notes.txt (mode 0600, owned by alice)", home.c_str());

  auto readback = vfs.Open(alice, home + "/notes.txt", vfs::OpenFlags::ReadOnly());
  MUST(readback.status());
  auto data = readback->Read(100);
  MUST(data.status());
  Sayf("   read it back over the secure channel: \"%s\"",
       util::StringOf(*data).c_str());

  Say("\n== 4. An anonymous user is held to anonymous permissions ==");
  agent::Agent mallory_agent("mallory");  // No keys -> anonymous on the server.
  vfs::UserContext mallory = vfs::UserContext::For(666, &mallory_agent);
  auto denied = vfs.Open(mallory, home + "/notes.txt", vfs::OpenFlags::ReadOnly());
  Sayf("   mallory reading alice's 0600 file: %s",
       denied.ok() ? "!!! allowed (bug)" : denied.status().ToString().c_str());

  Say("\n== 5. An impostor with the right name but wrong key cannot mount ==");
  auto impostor_key = crypto::RabinPrivateKey::Generate(&prng, 512);
  sfs::SelfCertifyingPath impostor =
      sfs::SelfCertifyingPath::For("dorm-room-pc.mit.edu", impostor_key.public_key());
  auto bad = vfs.Stat(alice, impostor.FullPath());
  Sayf("   mounting %.24s... with a different HostID: %s", impostor.ComponentName().c_str(),
       bad.ok() ? "!!! mounted (bug)" : bad.status().ToString().c_str());

  Say("\n== 6. Human-readable names are just symlinks ==");
  MUST(vfs.Symlink(alice, home, "/dorm"));
  auto via_link = vfs.Stat(alice, "/dorm/notes.txt");
  MUST(via_link.status());
  Sayf("   /dorm/notes.txt -> %" PRIu64 " bytes, via manual key distribution",
       via_link->size);

  Sayf("\nDone.  Virtual time elapsed: %.3f ms", clock.now_seconds() * 1e3);
  return 0;
}
