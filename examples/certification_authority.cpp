// Certification authorities as file systems (paper §2.4).
//
// "SFS certification authorities are nothing more than ordinary file
// systems serving symbolic links."  This example builds a Verisign-style
// CA as a *read-only* file system — signed offline, replicated on an
// untrusted mirror — plus the revocation directory idiom, and shows a
// user resolving /sfs/mit through her certification path.
#include <cstdio>

#include "src/agent/agent.h"
#include "src/auth/authserver.h"
#include "src/nfs/memfs.h"
#include "src/readonly/readonly.h"
#include "src/sfs/client.h"
#include "src/sfs/revocation.h"
#include "src/sfs/server.h"
#include "src/vfs/vfs.h"

namespace {

#define MUST(expr)                                                      \
  do {                                                                  \
    auto _status = (expr);                                              \
    if (!_status.ok()) {                                                \
      std::fprintf(stderr, "FAILED: %s\n", _status.ToString().c_str()); \
      return 1;                                                         \
    }                                                                   \
  } while (0)

}  // namespace

int main() {
  sim::Clock clock;
  sim::CostModel costs;
  crypto::Prng prng(uint64_t{1999});

  std::printf("== Customer servers ==\n");
  auth::AuthServer mit_auth;
  sfs::SfsServer::Options mit_options;
  mit_options.location = "sfs.lcs.mit.edu";
  mit_options.key_bits = 512;
  sfs::SfsServer mit(&clock, &costs, mit_options, &mit_auth);
  std::printf("   MIT:  %s\n", mit.Path().FullPath().c_str());

  std::printf("\n== Verisign signs its directory OFFLINE ==\n");
  auto verisign_key = crypto::RabinPrivateKey::Generate(&prng, 512);
  readonly::ImageBuilder builder;
  MUST(builder.AddSymlink(builder.RootDir(), "mit", mit.Path().FullPath()));
  MUST(builder.AddSymlink(builder.RootDir(), "mit.edu", mit.Path().FullPath()));
  auto revoked_dir = builder.AddDir(builder.RootDir(), "revoked");
  (void)revoked_dir;  // Populated below in the revocation act.
  readonly::SignedImage image = builder.Build(verisign_key, "sfs.verisign.com", 1);
  sfs::SelfCertifyingPath verisign_path =
      sfs::SelfCertifyingPath::For("sfs.verisign.com", verisign_key.public_key());
  std::printf("   image: %zu nodes, %llu bytes, one signature\n", image.nodes.size(),
              static_cast<unsigned long long>(image.TotalBytes()));
  std::printf("   the private key never touches a server.\n");

  std::printf("\n== An UNTRUSTED mirror serves the image ==\n");
  readonly::ReplicaServer mirror(&clock, &costs, image);
  sim::Link mirror_link(&clock, sim::LinkProfile::Tcp(), &mirror);
  readonly::ReadOnlyClient ca(&mirror_link, verisign_path);
  MUST(ca.Connect());
  std::printf("   client verified the signed root (version %llu) against the\n"
              "   HostID in Verisign's pathname: %.40s...\n",
              static_cast<unsigned long long>(ca.version()),
              verisign_path.ComponentName().c_str());

  std::printf("\n== The user's view: /sfs/mit just works ==\n");
  // Client machine: local FS + SFS client + the CA mounted read-only.
  sfs::SfsClient::Options copts;
  copts.ephemeral_key_bits = 512;
  sfs::SfsClient client(
      &clock, &costs,
      [&](const std::string& location) -> sfs::SfsServer* {
        return location == "sfs.lcs.mit.edu" ? &mit : nullptr;
      },
      copts);
  sim::Disk local_disk(&clock, sim::DiskProfile::Ibm18Es());
  nfs::MemFs local_fs(&clock, &local_disk, nfs::MemFs::Options{});
  vfs::Vfs vfs(&clock, &costs);
  vfs.MountRoot(&local_fs, local_fs.root_handle());
  vfs.EnableSfs(&client);

  // The administrator installs the CA at a well-known local path (itself
  // a verified read-only mount; here we surface it via a local mirror
  // directory of symlinks fetched through the verified client).
  vfs::UserContext admin = vfs::UserContext::For(0);
  MUST(vfs.Mkdir(admin, "/verisign"));
  {
    std::vector<nfs::DirEntry> entries;
    bool eof = false;
    nfs::Credentials anon;
    ca.ReadDir(ca.root_fh(), anon, 0, 100, &entries, &eof);
    for (const auto& entry : entries) {
      nfs::FileHandle fh;
      nfs::Fattr attr;
      if (ca.Lookup(ca.root_fh(), entry.name, anon, &fh, &attr) == nfs::Stat::kOk &&
          attr.type == nfs::FileType::kSymlink) {
        std::string target;
        ca.ReadLink(fh, anon, &target);
        MUST(vfs.Symlink(admin, target, "/verisign/" + entry.name));
      }
    }
  }

  agent::Agent alice_agent("alice");
  alice_agent.AddCertPathDir("/verisign");
  vfs::UserContext alice = vfs::UserContext::For(1000, &alice_agent);

  auto f = vfs.Open(alice, "/sfs/mit/hello-from-ca", vfs::OpenFlags::CreateRw());
  MUST(f.status());
  MUST(f->Write(util::BytesOf("resolved via certification path")));
  MUST(f->Close());
  auto real = vfs.Realpath(alice, "/sfs/mit");
  MUST(real.status());
  std::printf("   /sfs/mit  ->  %s\n", real->c_str());

  std::printf("\n== A tampering mirror is caught ==\n");
  readonly::SignedImage corrupt = image;
  for (auto& [hash, blob] : corrupt.nodes) {
    if (!blob.empty()) {
      blob[0] ^= 1;
    }
  }
  mirror.ReplaceImage(corrupt);
  readonly::ReadOnlyClient fresh(&mirror_link, verisign_path);
  MUST(fresh.Connect());  // The signature itself still verifies...
  nfs::FileHandle out;
  nfs::Fattr attr;
  nfs::Credentials anon;
  nfs::Stat s = fresh.Lookup(fresh.root_fh(), "mit", anon, &out, &attr);
  std::printf("   lookup on the corrupted mirror: %s\n", nfs::StatName(s));
  mirror.ReplaceImage(image);

  std::printf("\n== Revocation: anyone may deliver a certificate ==\n");
  // MIT's key is compromised; MIT signs a revocation.  Verisign-style
  // interactive CAs can serve it, but even a stranger can hand it to
  // alice's agent — it is self-authenticating.
  sfs::PathRevokeCert cert =
      sfs::PathRevokeCert::MakeRevocation(mit.private_key(), "sfs.lcs.mit.edu");
  MUST(alice_agent.AddRevocation(cert));
  auto blocked = vfs.Stat(alice, mit.Path().FullPath());
  std::printf("   accessing MIT's old pathname: %s\n",
              blocked.ok() ? "!!! allowed (bug)" : blocked.status().ToString().c_str());

  // A forged revocation from a stranger's key is not accepted for MIT.
  auto stranger = crypto::RabinPrivateKey::Generate(&prng, 512);
  sfs::PathRevokeCert forged =
      sfs::PathRevokeCert::MakeRevocation(stranger, "sfs.verisign.com");
  agent::Agent bob_agent("bob");
  MUST(bob_agent.AddRevocation(forged));  // Verifies under the stranger's key...
  bool verisign_revoked = bob_agent.IsRevoked(verisign_path);
  std::printf("   forged cert revokes Verisign? %s\n",
              verisign_revoked ? "!!! yes (bug)" : "no (it names the forger's own HostID)");
  return 0;
}
