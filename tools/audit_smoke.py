#!/usr/bin/env python3
"""Audit-journal forensic + overhead smoke gate.

Exercises the whole tamper-evident audit pipeline end to end:

  1. `audit_overhead --audit_emit=<dir>` runs a traced SFS workload and
     exports the finalized journal, its genesis key, and the Perfetto
     trace of the same run.
  2. The pristine journal must verify (`audit_verify` exit 0) and every
     record carrying a span id must cross-link to a (trace_id, span_id)
     pair present in the Perfetto export.
  3. Four adversaries each corrupt the journal at a chosen record k —
     rewrite a byte of record k, truncate the file at k, reorder k with
     its in-batch successor, splice an earlier record over k — and the
     verifier must report earliest_bad == k exactly, with every record
     before k still attested.
  4. The BM_Fig8Audit/BM_Fig9Audit rows rerun and diff against the
     committed BENCH_audit_overhead.json via bench_compare.py (virtual
     time, so honest builds reproduce the baseline to the nanosecond).
  5. The fresh rows must show <3% fig8/fig9 write-path overhead for the
     default batch=64 journal versus audit-off.

Usage: audit_smoke.py <audit_overhead-bin> <audit_verify-bin> \
                      <baseline.json> <scratch-dir>
"""

import json
import os
import shutil
import subprocess
import sys

ENTRY = 72  # header-relative record stride: 64-byte record + 8-byte tag
OVERHEAD_BOUND = 0.03


def run_verify(verify_bin, keyfile, log_path):
    """Runs audit_verify --json and returns (exit_code, parsed_json)."""
    out = subprocess.run(
        [verify_bin, "--json", "--records", f"--keyfile={keyfile}", log_path],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        doc = json.loads(out.stdout)
    except json.JSONDecodeError:
        print(out.stdout)
        raise SystemExit(f"FAIL: audit_verify produced invalid JSON for {log_path}")
    return out.returncode, doc


def expect_tamper(name, code, doc, k):
    if code != 1:
        raise SystemExit(f"FAIL [{name}]: expected exit 1, got {code}")
    if doc["earliest_bad"] != k:
        raise SystemExit(f"FAIL [{name}]: expected earliest_bad={k}, "
                         f"got {doc['earliest_bad']} ({doc['detail']})")
    # A seqno may appear twice after a splice (the genuine record plus
    # the unattested copy); it stays attested if any copy survives.
    survives = {}
    for r in doc["records"]:
        survives[r["seqno"]] = survives.get(r["seqno"], False) or r["survives"]
    lost = sorted(s for s, ok in survives.items() if s < k and not ok)
    if lost:
        raise SystemExit(f"FAIL [{name}]: records before k lost attestation: {lost}")
    print(f"ok   [{name}] earliest_bad={k}: {doc['detail']}")


def main(argv):
    if len(argv) != 5:
        print(__doc__.strip().splitlines()[-2].strip() + "\n" +
              __doc__.strip().splitlines()[-1].strip())
        return 2
    overhead_bin, verify_bin, baseline, scratch = argv[1:5]
    os.makedirs(scratch, exist_ok=True)

    # --- 1. Emit forensic artifacts -----------------------------------------
    emit_dir = os.path.join(scratch, "emit")
    os.makedirs(emit_dir, exist_ok=True)
    emit = subprocess.run([overhead_bin, f"--audit_emit={emit_dir}"],
                          stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                          text=True)
    sys.stdout.write(emit.stdout)
    if emit.returncode != 0:
        print(f"FAIL: --audit_emit exited {emit.returncode}")
        return 1
    log_path = os.path.join(emit_dir, "audit.log")
    keyfile = os.path.join(emit_dir, "audit.key")
    trace_path = os.path.join(emit_dir, "trace.json")

    # --- 2. Pristine verification + trace cross-link ------------------------
    code, doc = run_verify(verify_bin, keyfile, log_path)
    if code != 0 or not doc["ok"] or not doc["finalized"]:
        print(f"FAIL: pristine journal did not verify: {doc.get('detail')}")
        return 1
    records = doc["records"]
    if len(records) < 20:
        print(f"FAIL: expected a non-trivial journal, got {len(records)} records")
        return 1
    print(f"ok   pristine journal: {doc['records_ok']} records, "
          f"{doc['batches_ok']} batches")

    with open(trace_path, "r", encoding="utf-8") as f:
        trace = json.load(f)
    span_pairs = set()
    for event in trace.get("traceEvents", []):
        event_args = event.get("args", {})
        if "trace_id" in event_args and "span_id" in event_args:
            span_pairs.add((event_args["trace_id"], event_args["span_id"]))
    with_span = [r for r in records if r["span_id"] != 0]
    unlinked = [r["seqno"] for r in with_span
                if (r["trace_id"], r["span_id"]) not in span_pairs]
    if not with_span:
        print("FAIL: no audit record carries a span id (tracing was on)")
        return 1
    if unlinked:
        print(f"FAIL: records not cross-linked to the Perfetto trace: {unlinked}")
        return 1
    print(f"ok   trace cross-link: {len(with_span)}/{len(records)} records "
          f"match a Perfetto span")

    # --- 3. Tamper scenarios at a chosen record k ---------------------------
    with open(log_path, "rb") as f:
        pristine = f.read()

    # Pick k mid-log, with an in-batch successor so reorder stays inside
    # one batch (cross-batch moves are a different, easier detection).
    by_seq = {r["seqno"]: r for r in records}
    k = None
    for r in records:
        succ = by_seq.get(r["seqno"] + 1)
        if (len(records) // 3 <= r["seqno"] <= 2 * len(records) // 3
                and succ is not None and succ["batch"] == r["batch"]):
            k = r["seqno"]
            break
    if k is None:
        print("FAIL: could not find a mid-log record with an in-batch successor")
        return 1
    rk, rk1 = by_seq[k], by_seq[k + 1]

    def write_variant(name, data):
        path = os.path.join(scratch, f"{name}.log")
        with open(path, "wb") as f:
            f.write(data)
        return path

    # (a) rewrite: flip one byte inside record k's 64-byte body.
    data = bytearray(pristine)
    data[rk["offset"] + 3] ^= 0x80
    expect_tamper("rewrite", *run_verify(verify_bin, keyfile,
                                         write_variant("rewrite", data)), k)

    # (b) truncate: cut the file at record k's offset (k and everything
    # after it vanish; the verifier must still name k).
    expect_tamper("truncate", *run_verify(
        verify_bin, keyfile, write_variant("truncate", pristine[:rk["offset"]])), k)

    # (c) reorder: swap the 72-byte entries of k and k+1 within a batch.
    data = bytearray(pristine)
    a, b = rk["offset"], rk1["offset"]
    data[a:a + ENTRY], data[b:b + ENTRY] = pristine[b:b + ENTRY], pristine[a:a + ENTRY]
    expect_tamper("reorder", *run_verify(verify_bin, keyfile,
                                         write_variant("reorder", data)), k)

    # (d) splice: overwrite record k's entry with a genuine earlier
    # entry copied verbatim (replay of an authentic record).
    j = by_seq[max(0, k - len(records) // 4)]
    data = bytearray(pristine)
    data[rk["offset"]:rk["offset"] + ENTRY] = \
        pristine[j["offset"]:j["offset"] + ENTRY]
    expect_tamper("splice", *run_verify(verify_bin, keyfile,
                                        write_variant("splice", data)), k)

    # --- 4. Overhead rows vs the committed baseline -------------------------
    bench_dir = os.path.join(scratch, "bench")
    os.makedirs(bench_dir, exist_ok=True)
    run = subprocess.run(
        [overhead_bin, "--benchmark_filter=BM_Fig8Audit|BM_Fig9Audit",
         f"--bench_json_dir={bench_dir}"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    sys.stdout.write(run.stdout)
    if run.returncode != 0:
        print(f"FAIL: {overhead_bin} exited {run.returncode}")
        return 1
    candidate = os.path.join(bench_dir, "BENCH_audit_overhead.json")
    compare = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "bench_compare.py")
    if subprocess.call([sys.executable, compare, "compare",
                        "--threshold", "0.10", baseline, candidate]) != 0:
        return 1

    # --- 5. <3% write-path overhead for the default batch=64 journal --------
    with open(candidate, "r", encoding="utf-8") as f:
        runs = {r["name"]: r for r in json.load(f)["runs"]}

    def row(bench, arg):
        name = f"{bench}/{arg}/iterations:1/manual_time"
        if name not in runs:
            raise SystemExit(f"FAIL: missing benchmark row {name}")
        return runs[name]

    checks = [
        ("fig8 total", row("BM_Fig8Audit", 0), row("BM_Fig8Audit", 64), None),
        ("fig8 create", row("BM_Fig8Audit", 0), row("BM_Fig8Audit", 64),
         "create_s"),
        ("fig9 total", row("BM_Fig9Audit", 0), row("BM_Fig9Audit", 64), None),
        ("fig9 seq_write", row("BM_Fig9Audit", 0), row("BM_Fig9Audit", 64),
         "seq_write_s"),
        ("fig9 rand_write", row("BM_Fig9Audit", 0), row("BM_Fig9Audit", 64),
         "rand_write_s"),
    ]
    failed = False
    for label, base_row, audit_row, counter in checks:
        if counter is None:
            base_v, audit_v = base_row["real_time_s"], audit_row["real_time_s"]
        else:
            base_v = base_row["counters"][counter]
            audit_v = audit_row["counters"][counter]
        overhead = audit_v / base_v - 1.0
        status = "ok  " if overhead < OVERHEAD_BOUND else "FAIL"
        print(f"{status} {label}: audit overhead {overhead:+.3%} "
              f"(bound {OVERHEAD_BOUND:.0%})")
        failed = failed or overhead >= OVERHEAD_BOUND
    if failed:
        return 1

    print("\naudit_smoke: all forensic scenarios localized, overhead in bound")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
