#!/usr/bin/env python3
"""Compare two machine-readable benchmark result files.

Every bench/ binary writes a BENCH_<name>.json file (schema 1, see
bench/obs_report.h) alongside its console output.  This tool either
validates one such file or diffs two of them:

    bench_compare.py validate BENCH_fig7_compile.json
    bench_compare.py compare baseline/BENCH_fig7_compile.json \
                             candidate/BENCH_fig7_compile.json

`compare` matches runs by name and reports the real-time delta for
each.  It exits non-zero if any shared run regressed by more than the
threshold (default 10%), making it usable as a CI gate:

    bench_compare.py compare --threshold 0.10 old.json new.json

Runs present in only one file are reported but never fail the gate
(benchmarks are added and retired across commits).
"""

import argparse
import json
import sys


def validate_timeline(path, name, tl):
    """Structurally validates one embedded telemetry timeline.

    Checks the invariants the C++ side guarantees by construction
    (src/obs/timeline.cc): window edges are monotone and contiguous,
    every utilization share is in [0, 1], and the per-window category
    nanoseconds sum exactly to the window's span.
    """
    where = f"{path}: timelines[{name!r}]"
    if not isinstance(tl, dict):
        raise ValueError(f"{where} must be an object")
    for key in ("window_ns", "start_ns", "end_ns", "tracks", "windows",
                "episodes"):
        if key not in tl:
            raise ValueError(f"{where} missing key {key!r}")
    windows = tl["windows"]
    if not isinstance(windows, list):
        raise ValueError(f"{where}.windows must be a list")
    prev_end = tl["start_ns"]
    for i, w in enumerate(windows):
        if w["begin_ns"] != prev_end:
            raise ValueError(
                f"{where}.windows[{i}]: begin {w['begin_ns']} != previous "
                f"end {prev_end} (windows must be contiguous)")
        if w["end_ns"] <= w["begin_ns"]:
            raise ValueError(
                f"{where}.windows[{i}]: empty or backwards window "
                f"[{w['begin_ns']}, {w['end_ns']})")
        prev_end = w["end_ns"]
        span = w["end_ns"] - w["begin_ns"]
        util_total = sum(w.get("util_ns", {}).values())
        if util_total != span:
            raise ValueError(
                f"{where}.windows[{i}]: util_ns sums to {util_total}, "
                f"span is {span}")
        for cat, share in w.get("util", {}).items():
            if not 0.0 <= share <= 1.0 + 1e-9:
                raise ValueError(
                    f"{where}.windows[{i}]: util share {cat}={share} "
                    f"outside [0, 1]")
    if windows and prev_end != tl["end_ns"]:
        raise ValueError(
            f"{where}: last window ends at {prev_end}, header says "
            f"{tl['end_ns']}")
    for i, ep in enumerate(tl["episodes"]):
        for key in ("kind", "begin_ns", "end_ns", "windows", "cause"):
            if key not in ep:
                raise ValueError(f"{where}.episodes[{i}] missing key {key!r}")
        if ep["end_ns"] <= ep["begin_ns"]:
            raise ValueError(f"{where}.episodes[{i}]: empty or backwards")


def load(path):
    """Parses and structurally validates one results file."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: top level must be an object")
    for key in ("bench", "schema", "runs"):
        if key not in doc:
            raise ValueError(f"{path}: missing key {key!r}")
    if doc["schema"] != 1:
        raise ValueError(f"{path}: unsupported schema {doc['schema']!r}")
    if not isinstance(doc["runs"], list):
        raise ValueError(f"{path}: 'runs' must be a list")
    seen = set()
    for i, run in enumerate(doc["runs"]):
        if not isinstance(run, dict):
            raise ValueError(f"{path}: runs[{i}] must be an object")
        for key, kind in (("name", str), ("real_time_s", (int, float)),
                          ("iterations", int), ("error", bool)):
            if key not in run:
                raise ValueError(f"{path}: runs[{i}] missing key {key!r}")
            if not isinstance(run[key], kind):
                raise ValueError(f"{path}: runs[{i}].{key} has wrong type")
        if run["real_time_s"] < 0:
            raise ValueError(f"{path}: runs[{i}].real_time_s is negative")
        if run["name"] in seen:
            raise ValueError(f"{path}: duplicate run name {run['name']!r}")
        seen.add(run["name"])
    timelines = doc.get("timelines", {})
    if not isinstance(timelines, dict):
        raise ValueError(f"{path}: 'timelines' must be an object")
    for name, tl in timelines.items():
        # Timeline keys are base run names (no /iterations... suffix).
        if not any(r == name or r.startswith(name + "/") for r in seen):
            raise ValueError(f"{path}: timeline {name!r} matches no run")
        validate_timeline(path, name, tl)
    return doc


def cmd_validate(args):
    ok = True
    for path in args.files:
        try:
            doc = load(path)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"FAIL {path}: {e}")
            ok = False
            continue
        errored = [r["name"] for r in doc["runs"] if r["error"]]
        if errored:
            print(f"FAIL {path}: runs reported errors: {', '.join(errored)}")
            ok = False
            continue
        print(f"ok   {path}: bench={doc['bench']} runs={len(doc['runs'])}")
    return 0 if ok else 1


def cmd_compare(args):
    try:
        base = load(args.baseline)
        cand = load(args.candidate)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"error: {e}")
        return 2
    if base["bench"] != cand["bench"]:
        print(f"warning: comparing different benches "
              f"({base['bench']!r} vs {cand['bench']!r})")

    base_runs = {r["name"]: r for r in base["runs"]}
    cand_runs = {r["name"]: r for r in cand["runs"]}
    regressions = []
    width = max((len(n) for n in base_runs.keys() | cand_runs.keys()), default=4)

    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'candidate':>12}  delta")
    for name in sorted(base_runs.keys() | cand_runs.keys()):
        b, c = base_runs.get(name), cand_runs.get(name)
        if b is None:
            print(f"{name:<{width}}  {'-':>12}  {c['real_time_s']:>12.6g}  (new)")
            continue
        if c is None:
            print(f"{name:<{width}}  {b['real_time_s']:>12.6g}  {'-':>12}  (removed)")
            continue
        if b["error"] or c["error"]:
            print(f"{name:<{width}}  {'-':>12}  {'-':>12}  (errored)")
            continue
        if b["real_time_s"] == 0:
            delta_str = "n/a" if c["real_time_s"] == 0 else "+inf"
            regressed = c["real_time_s"] > 0
        else:
            ratio = c["real_time_s"] / b["real_time_s"] - 1.0
            delta_str = f"{ratio:+.1%}"
            regressed = ratio > args.threshold
        flag = "  REGRESSION" if regressed else ""
        print(f"{name:<{width}}  {b['real_time_s']:>12.6g}  "
              f"{c['real_time_s']:>12.6g}  {delta_str}{flag}")
        if regressed:
            regressions.append(name)

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}: {', '.join(regressions)}")
        return 1
    print("\nno regressions beyond threshold")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p_validate = sub.add_parser("validate", help="check file structure")
    p_validate.add_argument("files", nargs="+")
    p_validate.set_defaults(func=cmd_validate)

    p_compare = sub.add_parser("compare", help="diff two result files")
    p_compare.add_argument("--threshold", type=float, default=0.10,
                           help="max allowed real-time regression (default 0.10)")
    p_compare.add_argument("baseline")
    p_compare.add_argument("candidate")
    p_compare.set_defaults(func=cmd_compare)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
