// Offline audit-log verifier (docs/OBSERVABILITY.md §Audit log).
//
// Replays the per-batch MAC keystream from the genesis key over a
// journal written by obs::AuditLog, reports whether the log is intact,
// and — when it is not — pinpoints the earliest record that cannot be
// attested (tampered, reordered, spliced, or missing).  Surviving
// records are printed with their trace/span ids so they can be
// cross-linked to a Perfetto export of the same run.
//
// Usage:
//   audit_verify [--json] [--records] --key=<hex> <log-file>
//   audit_verify [--json] [--records] --keyfile=<path-with-hex> <log-file>
//
// Exit status: 0 intact (verified and finalized), 1 tamper or tail
// loss detected, 2 usage/IO error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/obs/auditlog.h"
#include "src/util/bytes.h"

namespace {

bool ReadFileBytes(const std::string& path, util::Bytes* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string& s = buf.str();
  out->assign(s.begin(), s.end());
  return true;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) {
    return "";
  }
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

void PrintRecordJson(const obs::AuditRecordInfo& info) {
  const obs::AuditRecord& r = info.record;
  std::printf(
      "    {\"seqno\": %llu, \"kind\": \"%s\", \"proc\": %u, "
      "\"connection\": %llu, \"wire_seqno\": %u, \"verdict\": %u, "
      "\"fh_digest\": %llu, \"time_ns\": %llu, \"trace_id\": %llu, "
      "\"span_id\": %llu, \"offset\": %llu, \"batch\": %u, "
      "\"survives\": %s}",
      static_cast<unsigned long long>(r.seqno),
      obs::AuditKindName(static_cast<obs::AuditKind>(r.kind)), r.proc,
      static_cast<unsigned long long>(r.connection_id), r.wire_seqno, r.verdict,
      static_cast<unsigned long long>(r.fh_digest),
      static_cast<unsigned long long>(r.time_ns),
      static_cast<unsigned long long>(r.trace_id),
      static_cast<unsigned long long>(r.span_id),
      static_cast<unsigned long long>(info.offset), info.batch_index,
      info.survives ? "true" : "false");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool dump_records = false;
  std::string key_hex;
  std::string log_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--records") {
      dump_records = true;
    } else if (arg.rfind("--key=", 0) == 0) {
      key_hex = arg.substr(6);
    } else if (arg.rfind("--keyfile=", 0) == 0) {
      std::ifstream in(arg.substr(10));
      if (!in) {
        std::fprintf(stderr, "audit_verify: cannot read key file\n");
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      key_hex = Trim(buf.str());
    } else if (!arg.empty() && arg[0] != '-' && log_path.empty()) {
      log_path = arg;
    } else {
      std::fprintf(stderr,
                   "usage: audit_verify [--json] [--records] "
                   "(--key=<hex>|--keyfile=<path>) <log-file>\n");
      return 2;
    }
  }
  if (key_hex.empty() || log_path.empty()) {
    std::fprintf(stderr,
                 "usage: audit_verify [--json] [--records] "
                 "(--key=<hex>|--keyfile=<path>) <log-file>\n");
    return 2;
  }
  auto key = util::HexDecode(key_hex);
  if (!key.ok()) {
    std::fprintf(stderr, "audit_verify: genesis key is not valid hex\n");
    return 2;
  }
  util::Bytes log;
  if (!ReadFileBytes(log_path, &log)) {
    std::fprintf(stderr, "audit_verify: cannot read %s\n", log_path.c_str());
    return 2;
  }

  obs::AuditVerifyResult result = obs::VerifyAuditLog(key.value(), log);
  const bool intact = result.ok && result.finalized;

  if (json) {
    std::printf("{\n  \"ok\": %s,\n  \"finalized\": %s,\n", result.ok ? "true" : "false",
                result.finalized ? "true" : "false");
    std::printf("  \"records_ok\": %llu,\n  \"batches_ok\": %llu,\n",
                static_cast<unsigned long long>(result.records_ok),
                static_cast<unsigned long long>(result.batches_ok));
    if (result.earliest_bad.has_value()) {
      std::printf("  \"earliest_bad\": %llu,\n",
                  static_cast<unsigned long long>(*result.earliest_bad));
    } else {
      std::printf("  \"earliest_bad\": null,\n");
    }
    std::string detail;
    for (char c : result.detail) {
      if (c == '"' || c == '\\') {
        detail += '\\';
      }
      detail += c;
    }
    std::printf("  \"detail\": \"%s\",\n  \"records\": [", detail.c_str());
    bool first = true;
    for (const obs::AuditRecordInfo& info : result.records) {
      std::printf(first ? "\n" : ",\n");
      PrintRecordJson(info);
      first = false;
    }
    std::printf("%s]\n}\n", first ? "" : "\n  ");
    return intact ? 0 : 1;
  }

  if (dump_records) {
    std::printf("%-7s %-16s %-5s %-5s %-8s %-7s %-10s %-10s %s\n", "seqno", "kind",
                "proc", "conn", "verdict", "batch", "trace", "span", "status");
    for (const obs::AuditRecordInfo& info : result.records) {
      const obs::AuditRecord& r = info.record;
      std::printf("%-7llu %-16s %-5u %-5llu %-8u %-7u %-10llu %-10llu %s\n",
                  static_cast<unsigned long long>(r.seqno),
                  obs::AuditKindName(static_cast<obs::AuditKind>(r.kind)), r.proc,
                  static_cast<unsigned long long>(r.connection_id), r.verdict,
                  info.batch_index, static_cast<unsigned long long>(r.trace_id),
                  static_cast<unsigned long long>(r.span_id),
                  info.survives ? "ok" : "UNATTESTED");
    }
  }
  if (intact) {
    std::printf("AUDIT LOG OK: %llu record(s) in %llu batch(es), finalized\n",
                static_cast<unsigned long long>(result.records_ok),
                static_cast<unsigned long long>(result.batches_ok));
    return 0;
  }
  if (result.earliest_bad.has_value()) {
    std::printf("TAMPER DETECTED at record %llu: %s\n",
                static_cast<unsigned long long>(*result.earliest_bad),
                result.detail.c_str());
  } else {
    std::printf("AUDIT LOG NOT VERIFIABLE: %s\n",
                result.detail.empty() ? "log is not finalized" : result.detail.c_str());
  }
  std::printf("%llu record(s) still attested in %llu intact batch(es)\n",
              static_cast<unsigned long long>(result.records_ok),
              static_cast<unsigned long long>(result.batches_ok));
  return 1;
}
