#!/usr/bin/env python3
"""Fleet-simulator smoke gate: run, diff, and check the telemetry timeline.

Runs the BM_FleetSmoke_* and BM_FleetKnee_Smoke rows of the
fleet_scaling benchmark (small, deterministic fleet configurations over
the discrete-event core) into a scratch directory, then applies three
gates:

  1. Baseline diff.  Delegates to bench_compare.py to diff the fresh
     BENCH_fleet_scaling.json against the committed baseline.  The rows
     report *virtual* time, which is a pure function of the timing
     model, so the comparison is exact: any delta means the event core,
     admission queue, or link model changed behaviour.  The 10%
     threshold exists only to absorb a deliberately retuned cost model
     half-way through a stack of commits; honest refactors reproduce
     the baseline to the nanosecond.

  2. Timeline integration.  For every run with an embedded timeline
     (bench_compare.py load() already validated edges and utilization
     shares), the windowed ops-rate deltas must integrate back to the
     run's cumulative op counter within 1% — the windows partition the
     run, so any gap means the sampler lost or double-counted a window.

  3. Knee/episode cross-check.  Across the BM_FleetKnee_Smoke client
     sweep, the knee is the first row reaching 80% of the series-max
     throughput.  The overload annotator must agree with the knee it
     was not shown: rows strictly before the knee have no overload
     episodes, and the saturated last row has at least one.

Usage: fleet_smoke.py <fleet_scaling-binary> <baseline.json> <scratch-dir>
"""

import os
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_compare  # noqa: E402


def timeline_for(doc, run_name):
    """The timeline whose key is a prefix (base name) of `run_name`."""
    for key, tl in doc.get("timelines", {}).items():
        if run_name == key or run_name.startswith(key + "/"):
            return tl
    return None


def check_ops_integration(doc):
    """Gate 2: windowed ops deltas must sum to the cumulative counter."""
    failures = []
    checked = 0
    for run in doc["runs"]:
        tl = timeline_for(doc, run["name"])
        if tl is None:
            continue
        counters = dict(run.get("counters", {}))
        if "ops" not in counters:
            continue
        total = counters["ops"]
        windowed = sum(w["rates"].get("ops", {}).get("delta", 0)
                      for w in tl["windows"])
        checked += 1
        if abs(windowed - total) > 0.01 * max(total, 1):
            failures.append(
                f"{run['name']}: windowed ops sum {windowed} vs counter "
                f"{total} (>1% apart)")
        else:
            print(f"ok   ops integration: {run['name']}: "
                  f"{windowed} windowed == {total:g} cumulative")
    if checked == 0:
        failures.append("no run had both a timeline and an 'ops' counter")
    return failures


def check_knee_episodes(doc):
    """Gate 3: overload episodes only at/after the measured knee."""
    series = []  # (clients, run, timeline)
    for run in doc["runs"]:
        name = run["name"]
        if not name.startswith("BM_FleetKnee_Smoke/"):
            continue
        clients = int(name.split("/")[1])
        tl = timeline_for(doc, name)
        if tl is None:
            return [f"{name}: knee row has no timeline"]
        series.append((clients, run, tl))
    if len(series) < 3:
        return [f"knee series too short ({len(series)} rows); "
                "expected the BM_FleetKnee_Smoke client sweep"]
    series.sort()

    throughput = {c: dict(r.get("counters", {})).get("ops_per_sec", 0.0)
                  for c, r, _ in series}
    peak = max(throughput.values())
    knee = next(c for c, r, _ in series if throughput[c] >= 0.8 * peak)
    print(f"knee: clients={knee} "
          f"({throughput[knee]:.0f} of peak {peak:.0f} ops/s)")

    failures = []
    for clients, run, tl in series:
        overloads = [e for e in tl["episodes"] if e["kind"] == "overload"]
        if clients < knee and overloads:
            failures.append(
                f"{run['name']}: {len(overloads)} overload episode(s) "
                f"before the knee (clients={clients} < {knee}): "
                f"{overloads[0]['cause']}")
        else:
            print(f"ok   episodes: clients={clients}: "
                  f"{len(overloads)} overload "
                  f"({'at/after' if clients >= knee else 'before'} knee)")
    saturated_clients, saturated_run, saturated_tl = series[-1]
    if not any(e["kind"] == "overload" for e in saturated_tl["episodes"]):
        failures.append(
            f"{saturated_run['name']}: saturated row (clients="
            f"{saturated_clients}) reported no overload episode")
    return failures


def main(argv):
    if len(argv) != 4:
        print(__doc__.strip().splitlines()[-1])
        return 2
    binary, baseline, scratch = argv[1], argv[2], argv[3]
    os.makedirs(scratch, exist_ok=True)
    run = subprocess.run(
        [
            binary,
            "--benchmark_filter=BM_FleetSmoke|BM_FleetKnee_Smoke",
            f"--bench_json_dir={scratch}",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    sys.stdout.write(run.stdout)
    if run.returncode != 0:
        print(f"FAIL: {binary} exited {run.returncode}")
        return 1

    candidate = os.path.join(scratch, "BENCH_fleet_scaling.json")
    # Gate 1: exact-ish baseline diff (also schema-validates both files,
    # including every embedded timeline's window/utilization invariants).
    compare = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "bench_compare.py")
    rc = subprocess.call([
        sys.executable, compare, "compare", "--threshold", "0.10",
        baseline, candidate,
    ])
    if rc != 0:
        return rc

    # Gates 2 and 3 on the fresh results.
    doc = bench_compare.load(candidate)
    failures = check_ops_integration(doc) + check_knee_episodes(doc)
    for failure in failures:
        print(f"FAIL {failure}")
    if failures:
        return 1
    print("fleet smoke: all timeline gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
