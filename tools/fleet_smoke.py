#!/usr/bin/env python3
"""Fleet-simulator smoke gate: run and diff against the committed baseline.

Runs the BM_FleetSmoke_* rows of the fleet_scaling benchmark (small,
deterministic fleet configurations over the discrete-event core) into a
scratch directory, then delegates to bench_compare.py to diff the fresh
BENCH_fleet_scaling.json against the committed baseline.  The rows
report *virtual* time, which is a pure function of the timing model, so
the comparison is exact: any delta means the event core, admission
queue, or link model changed behaviour.  The 10% threshold exists only
to absorb a deliberately retuned cost model half-way through a stack of
commits; honest refactors reproduce the baseline to the nanosecond.

Usage: fleet_smoke.py <fleet_scaling-binary> <baseline.json> <scratch-dir>
"""

import os
import subprocess
import sys


def main(argv):
    if len(argv) != 4:
        print(__doc__.strip().splitlines()[-1])
        return 2
    binary, baseline, scratch = argv[1], argv[2], argv[3]
    os.makedirs(scratch, exist_ok=True)
    run = subprocess.run(
        [
            binary,
            "--benchmark_filter=BM_FleetSmoke",
            f"--bench_json_dir={scratch}",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    sys.stdout.write(run.stdout)
    if run.returncode != 0:
        print(f"FAIL: {binary} exited {run.returncode}")
        return 1
    compare = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "bench_compare.py")
    candidate = os.path.join(scratch, "BENCH_fleet_scaling.json")
    return subprocess.call([
        sys.executable, compare, "compare", "--threshold", "0.10",
        baseline, candidate,
    ])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
