#!/usr/bin/env python3
"""Key-negotiation scaling gate: run, diff, and check the knee's shape.

Runs the BM_NegotiationKnee sweep of the negotiation_scaling benchmark
(cold-start SRP+Rabin handshakes competing with a fixed data-client
population for one serial sim::Host) into a scratch directory, then
applies two gates:

  1. Baseline diff.  Delegates to bench_compare.py to diff the fresh
     BENCH_negotiation_scaling.json against the committed baseline.
     The rows report *virtual* time — a pure function of the cost
     model — so honest refactors reproduce the baseline exactly; the
     10% threshold only absorbs a deliberately retuned cost model
     mid-stack.

  2. Knee shape.  Across the handshake-client sweep:
       * negotiations/sec must saturate before the end of the sweep
         (the knee — first row at >=80% of series peak — is not the
         last row);
       * cost-model-charged crypto utilization must be low in the
         first row (<=0.4) and dominate the last (>=0.6; the event
         loop charges each inter-event gap once, so interleaved
         timer/wire events keep the ledger share below the service-
         side busy fraction even at saturation);
       * the data path must show head-of-line starvation: the last
         row's data-op p99 at least doubles the first row's;
       * every row's clock ledger balances and nothing was shed (the
         admission queue is unbounded; loss would mean the rig itself
         is broken).

Usage: negotiation_smoke.py <negotiation_scaling-binary> <baseline.json> <scratch-dir>
"""

import os
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_compare  # noqa: E402


def knee_checks(doc):
    series = []  # (handshakers, counters)
    for run in doc["runs"]:
        name = run["name"]
        if not name.startswith("BM_NegotiationKnee/"):
            continue
        handshakers = int(name.split("/")[1])
        series.append((handshakers, dict(run.get("counters", {}))))
    if len(series) < 4:
        return [f"knee series too short ({len(series)} rows); "
                "expected the BM_NegotiationKnee handshaker sweep"]
    series.sort()

    failures = []
    for h, counters in series:
        if counters.get("ledger_ok", 0.0) != 1.0:
            failures.append(f"handshakers={h}: clock ledger does not balance")
        if counters.get("shed", 0.0) != 0.0:
            failures.append(f"handshakers={h}: {counters['shed']:g} requests "
                            "shed on an unbounded queue")

    rate = {h: c.get("negotiations_per_sec", 0.0) for h, c in series}
    peak = max(rate.values())
    knee = next(h for h, _ in series if rate[h] >= 0.8 * peak)
    last_h = series[-1][0]
    print(f"knee: handshakers={knee} "
          f"({rate[knee]:.2f} of peak {peak:.2f} negotiations/s)")
    if knee == last_h:
        failures.append(
            f"no knee: negotiations/sec still climbing at the last row "
            f"(handshakers={last_h}, {rate[last_h]:.2f}/s)")

    first_util = series[0][1].get("crypto_util", 0.0)
    last_util = series[-1][1].get("crypto_util", 0.0)
    if first_util > 0.4:
        failures.append(f"first row already crypto-saturated "
                        f"(crypto_util={first_util:.2f} > 0.4); sweep starts past the knee")
    if last_util < 0.6:
        failures.append(f"last row not crypto-saturated "
                        f"(crypto_util={last_util:.2f} < 0.6)")
    print(f"crypto_util: {first_util:.2f} (handshakers={series[0][0]}) -> "
          f"{last_util:.2f} (handshakers={last_h})")

    first_p99 = series[0][1].get("data_p99_us", 0.0)
    last_p99 = series[-1][1].get("data_p99_us", 0.0)
    if first_p99 <= 0.0 or last_p99 < 2.0 * first_p99:
        failures.append(
            f"data path not visibly starved: p99 {first_p99:.0f}us -> "
            f"{last_p99:.0f}us (expected >=2x growth across the sweep)")
    else:
        print(f"data p99: {first_p99:.0f}us -> {last_p99:.0f}us "
              f"({last_p99 / first_p99:.1f}x head-of-line growth)")
    return failures


def main(argv):
    if len(argv) != 4:
        print(__doc__.strip().splitlines()[-1])
        return 2
    binary, baseline, scratch = argv[1], argv[2], argv[3]
    os.makedirs(scratch, exist_ok=True)
    run = subprocess.run(
        [
            binary,
            "--benchmark_filter=BM_NegotiationKnee",
            f"--bench_json_dir={scratch}",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    sys.stdout.write(run.stdout)
    if run.returncode != 0:
        print(f"FAIL: {binary} exited {run.returncode}")
        return 1

    candidate = os.path.join(scratch, "BENCH_negotiation_scaling.json")
    compare = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "bench_compare.py")
    rc = subprocess.call([
        sys.executable, compare, "compare", "--threshold", "0.10",
        baseline, candidate,
    ])
    if rc != 0:
        return rc

    failures = knee_checks(bench_compare.load(candidate))
    for failure in failures:
        print(f"FAIL {failure}")
    if failures:
        return 1
    print("negotiation smoke: all knee gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
