#!/usr/bin/env python3
"""Smoke-check the machine-readable benchmark pipeline.

Runs each benchmark binary given on the command line with a minimal
workload into a temporary directory, then validates every BENCH_*.json
it produced (via bench_compare.py's loader) and, for span_report, the
exported Chrome trace.  With --committed=<dir>, additionally validates
every BENCH_*.json checked in at that directory (the regression-gate
baselines: crypto, fleet, audit, ...), so a hand-edited or truncated
baseline fails the suite rather than silently skewing a gate.  Wired up
as the `bench_json_smoke` CMake target and ctest entry.

Usage: bench_json_smoke.py [--committed=<dir>] <binary> [<binary>...]
"""

import glob

import json
import os
import subprocess
import sys
import tempfile

import bench_compare


def args_for(binary):
    """The smallest honest invocation of each supported binary."""
    name = os.path.basename(binary)
    if name == "span_report":
        return [binary, "--workload", "fig5", "--export", "trace.json"]
    if name == "obs_report":
        return [binary]
    if name == "crypto_prims":
        return [binary, "--benchmark_filter=Sha1", "--benchmark_min_time=0.01"]
    # google-benchmark binaries: one cheap repetition of everything.
    return [binary, "--benchmark_min_time=0.01"]


def validate_committed(directory):
    """Validates every committed BENCH_*.json baseline; returns failures."""
    paths = sorted(glob.glob(os.path.join(directory, "BENCH_*.json")))
    if not paths:
        print(f"FAIL {directory}: no committed BENCH_*.json found")
        return 1
    failures = 0
    for path in paths:
        try:
            doc = bench_compare.load(path)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"FAIL {path}: {e}")
            failures += 1
            continue
        errored = [r["name"] for r in doc["runs"] if r["error"]]
        if errored:
            print(f"FAIL {path}: runs errored: {', '.join(errored)}")
            failures += 1
            continue
        print(f"ok   {os.path.basename(path)}: committed baseline, "
              f"{len(doc['runs'])} run(s)")
    return failures


def main(argv):
    committed = None
    binaries = []
    for arg in argv:
        if arg.startswith("--committed="):
            committed = arg[len("--committed="):]
        else:
            binaries.append(arg)
    argv = binaries
    if not argv and committed is None:
        print("usage: bench_json_smoke.py [--committed=<dir>] <binary> [<binary>...]")
        return 2
    failures = 0
    if committed is not None:
        failures += validate_committed(committed)
    with tempfile.TemporaryDirectory(prefix="bench_json_smoke.") as tmp:
        for binary in argv:
            cmd = args_for(binary) + [f"--bench_json_dir={tmp}"]
            print("running:", " ".join(cmd), flush=True)
            proc = subprocess.run(cmd, cwd=tmp, stdout=subprocess.DEVNULL)
            if proc.returncode != 0:
                print(f"FAIL {binary}: exit {proc.returncode}")
                failures += 1
                continue
            name = os.path.basename(binary)
            path = os.path.join(tmp, f"BENCH_{name}.json")
            try:
                doc = bench_compare.load(path)
            except (OSError, ValueError, json.JSONDecodeError) as e:
                print(f"FAIL {binary}: {e}")
                failures += 1
                continue
            errored = [r["name"] for r in doc["runs"] if r["error"]]
            if errored:
                print(f"FAIL {binary}: runs errored: {', '.join(errored)}")
                failures += 1
                continue
            print(f"ok   {name}: {len(doc['runs'])} run(s)")
            if name == "span_report":
                with open(os.path.join(tmp, "trace.json"), encoding="utf-8") as f:
                    trace = json.load(f)
                if not trace.get("traceEvents"):
                    print(f"FAIL {binary}: empty traceEvents")
                    failures += 1
                else:
                    print(f"ok   {name}: trace.json with "
                          f"{len(trace['traceEvents'])} events")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
